//! Property tests for the LP/MILP solver on randomized instances.

use milp::{solve_lp, solve_milp, ConstraintSense, LinExpr, MilpOptions, MilpStatus, Model};
use proptest::prelude::*;

/// Builds a random box-bounded minimization LP with `n` vars and `m`
/// non-negative-coefficient ≤-constraints (always feasible: x = 0).
fn random_model(costs: &[f64], coeffs: &[f64], rhs: &[f64], integer: bool) -> Model {
    let n = costs.len();
    let m = rhs.len();
    let mut model = Model::new();
    let vars: Vec<_> = costs
        .iter()
        .enumerate()
        .map(|(i, &c)| model.add_var(&format!("x{i}"), 0.0, 1.0, c, integer))
        .collect();
    for r in 0..m {
        let expr = LinExpr::from_terms(
            vars.iter()
                .enumerate()
                .map(|(i, &v)| (v, coeffs[r * n + i])),
        );
        model.add_constraint(expr, ConstraintSense::Le, rhs[r]);
    }
    model
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    /// LP solutions are feasible and dominate every 0/1 corner.
    #[test]
    fn lp_dominates_binary_corners(
        costs in prop::collection::vec(-3.0f64..3.0, 2..6),
        rhs in prop::collection::vec(0.5f64..3.0, 1..4),
        coeff_seed in prop::collection::vec(0.05f64..1.5, 24),
    ) {
        let n = costs.len();
        let m = rhs.len();
        let coeffs: Vec<f64> = (0..n * m).map(|k| coeff_seed[k % coeff_seed.len()]).collect();
        let model = random_model(&costs, &coeffs, &rhs, false);
        let sol = solve_lp(&model).expect("feasible by construction");
        prop_assert!(model.is_feasible(&sol.x, 1e-6));
        for mask in 0..(1u32 << n) {
            let x: Vec<f64> = (0..n).map(|i| ((mask >> i) & 1) as f64).collect();
            if model.is_feasible(&x, 1e-9) {
                prop_assert!(
                    sol.objective <= model.objective_value(&x) + 1e-6,
                    "corner {x:?} beats the LP"
                );
            }
        }
    }

    /// The MILP optimum equals brute force over all 0/1 assignments.
    #[test]
    fn milp_matches_brute_force(
        costs in prop::collection::vec(-3.0f64..3.0, 2..5),
        rhs in prop::collection::vec(0.5f64..2.5, 1..3),
        coeff_seed in prop::collection::vec(0.05f64..1.5, 15),
    ) {
        let n = costs.len();
        let m = rhs.len();
        let coeffs: Vec<f64> = (0..n * m).map(|k| coeff_seed[k % coeff_seed.len()]).collect();
        let model = random_model(&costs, &coeffs, &rhs, true);
        let r = solve_milp(&model, &MilpOptions::default());
        prop_assert_eq!(r.status, MilpStatus::Optimal);
        let mut best = f64::INFINITY;
        for mask in 0..(1u32 << n) {
            let x: Vec<f64> = (0..n).map(|i| ((mask >> i) & 1) as f64).collect();
            if model.is_feasible(&x, 1e-9) {
                best = best.min(model.objective_value(&x));
            }
        }
        prop_assert!((r.objective - best).abs() < 1e-6, "milp {} vs brute {}", r.objective, best);
        // The reported bound is a valid lower bound.
        prop_assert!(r.bound <= r.objective + 1e-6);
    }

    /// The LP relaxation never exceeds the MILP optimum.
    #[test]
    fn relaxation_lower_bounds_milp(
        costs in prop::collection::vec(-2.0f64..2.0, 2..5),
        rhs in prop::collection::vec(0.5f64..2.0, 1..3),
        coeff_seed in prop::collection::vec(0.1f64..1.0, 15),
    ) {
        let n = costs.len();
        let m = rhs.len();
        let coeffs: Vec<f64> = (0..n * m).map(|k| coeff_seed[k % coeff_seed.len()]).collect();
        let relaxed = random_model(&costs, &coeffs, &rhs, false);
        let integral = random_model(&costs, &coeffs, &rhs, true);
        let lp = solve_lp(&relaxed).unwrap();
        let ip = solve_milp(&integral, &MilpOptions::default());
        prop_assert_eq!(ip.status, MilpStatus::Optimal);
        prop_assert!(lp.objective <= ip.objective + 1e-6);
    }

    /// Equality-constrained transportation problems balance exactly.
    #[test]
    fn transportation_balances(
        demand in prop::collection::vec(0.2f64..2.0, 2..4),
        cost_seed in prop::collection::vec(0.1f64..5.0, 12),
    ) {
        let sinks = demand.len();
        let srcs = 3usize;
        let total: f64 = demand.iter().sum();
        let mut m = Model::new();
        let mut vars = vec![vec![]; srcs];
        for (i, row) in vars.iter_mut().enumerate() {
            for j in 0..sinks {
                let c = cost_seed[(i * sinks + j) % cost_seed.len()];
                row.push(m.add_nonneg(&format!("x{i}{j}"), c));
            }
        }
        // Each source ships at most total (loose), each sink exactly met.
        for row in &vars {
            let e = LinExpr::from_terms(row.iter().map(|&v| (v, 1.0)));
            m.add_constraint(e, ConstraintSense::Le, total);
        }
        for (j, &d) in demand.iter().enumerate() {
            let e = LinExpr::from_terms((0..srcs).map(|i| (vars[i][j], 1.0)));
            m.add_constraint(e, ConstraintSense::Eq, d);
        }
        let sol = solve_lp(&m).expect("feasible");
        // Every sink's inflow equals its demand.
        for (j, &d) in demand.iter().enumerate() {
            let inflow: f64 = (0..srcs).map(|i| sol.x[vars[i][j].index()]).sum();
            prop_assert!((inflow - d).abs() < 1e-6);
        }
        // Optimal routes everything through per-sink-cheapest sources.
        let cheapest: f64 = demand
            .iter()
            .enumerate()
            .map(|(j, &d)| {
                let c = (0..srcs)
                    .map(|i| cost_seed[(i * sinks + j) % cost_seed.len()])
                    .fold(f64::INFINITY, f64::min);
                c * d
            })
            .sum();
        prop_assert!((sol.objective - cheapest).abs() < 1e-6);
    }
}
