//! Differential tests: the sparsified simplex must follow the exact same
//! pivot sequence as the frozen dense solver — same solutions, same
//! objectives, same iteration counts.

use milp::{solve_lp, solve_lp_dense, ConstraintSense::*, LinExpr, LpStatus, Model, VarId};
use rand::Rng;

fn expr(terms: &[(VarId, f64)]) -> LinExpr {
    LinExpr::from_terms(terms.iter().copied())
}

fn assert_same(m: &Model, label: &str) {
    let sparse = solve_lp(m);
    let dense = solve_lp_dense(m);
    match (&sparse, &dense) {
        (Ok(a), Ok(b)) => {
            assert_eq!(a.iterations, b.iterations, "{label}: iteration count");
            assert_eq!(
                a.objective.to_bits(),
                b.objective.to_bits(),
                "{label}: objective {} vs {}",
                a.objective,
                b.objective
            );
            assert_eq!(a.x.len(), b.x.len(), "{label}: solution length");
            for (j, (xa, xb)) in a.x.iter().zip(b.x.iter()).enumerate() {
                // Zero-sign divergence (±0.0) is the one tolerated bitwise
                // difference: skipping an exact-zero column can keep a -0.0
                // the dense subtraction would flip. `==` treats them equal
                // and nothing downstream distinguishes them.
                assert!(xa == xb, "{label}: x[{j}] = {xa} (sparse) vs {xb} (dense)");
            }
            assert_eq!(a.max_residual, b.max_residual, "{label}: residual mismatch");
        }
        (Err(a), Err(b)) => assert_eq!(a, b, "{label}: status"),
        _ => panic!("{label}: sparse {sparse:?} vs dense {dense:?}"),
    }
}

#[test]
fn transportation_lp_matches_dense() {
    let mut m = Model::new();
    let costs = [[4.0, 6.0, 9.0], [5.0, 3.0, 8.0]];
    let supply = [30.0, 40.0];
    let demand = [20.0, 30.0, 20.0];
    let mut v = [[None; 3]; 2];
    for (i, row) in costs.iter().enumerate() {
        for (j, &c) in row.iter().enumerate() {
            v[i][j] = Some(m.add_nonneg(&format!("x{i}{j}"), c));
        }
    }
    for i in 0..2 {
        let e = expr(&(0..3).map(|j| (v[i][j].unwrap(), 1.0)).collect::<Vec<_>>());
        m.add_constraint(e, Le, supply[i]);
    }
    for j in 0..3 {
        let e = expr(&(0..2).map(|i| (v[i][j].unwrap(), 1.0)).collect::<Vec<_>>());
        m.add_constraint(e, Ge, demand[j]);
    }
    assert_same(&m, "transportation");
}

#[test]
fn terminal_statuses_match_dense() {
    // Infeasible.
    let mut inf = Model::new();
    let x = inf.add_var("x", 0.0, 1.0, 1.0, false);
    inf.add_constraint(expr(&[(x, 1.0)]), Ge, 2.0);
    assert_same(&inf, "infeasible");
    assert_eq!(solve_lp(&inf), Err(LpStatus::Infeasible));

    // Unbounded.
    let mut unb = Model::new();
    let x = unb.add_nonneg("x", -1.0);
    let y = unb.add_nonneg("y", 0.0);
    unb.add_constraint(expr(&[(x, 1.0), (y, -1.0)]), Le, 1.0);
    assert_same(&unb, "unbounded");
    assert_eq!(solve_lp(&unb), Err(LpStatus::Unbounded));
}

#[test]
fn random_lps_match_dense_pivot_for_pivot() {
    // Dense-ish and sparse-ish random LPs across several seeds; equality,
    // inequality, bound-flip and phase-1 paths are all exercised.
    for seed in [3u64, 11, 42, 97, 2026] {
        let mut rng = emb_util::seed_rng(seed);
        let mut m = Model::new();
        let n = 30;
        let rows = 18;
        let vars: Vec<_> = (0..n)
            .map(|i| m.add_var(&format!("x{i}"), 0.0, 1.0, rng.gen_range(-1.0..1.0), false))
            .collect();
        for r in 0..rows {
            // Sparse rows: ~1/3 of the variables participate.
            let mut terms = Vec::new();
            for &v in &vars {
                if rng.gen_range(0.0..1.0) < 0.34 {
                    terms.push((v, rng.gen_range(-1.0..1.0)));
                }
            }
            let e = expr(&terms);
            if r % 3 == 0 {
                m.add_constraint(e, Ge, rng.gen_range(-2.0..0.5));
            } else {
                m.add_constraint(e, Le, rng.gen_range(0.5..6.0));
            }
        }
        assert_same(&m, &format!("random seed {seed}"));
    }
}
