//! EmbDL workload generation: datasets and batch streams.
//!
//! The paper evaluates two application families; this crate generates
//! both, scaled to development-machine sizes while preserving the
//! properties that drive cache behaviour (access skew, batch volume per
//! iteration, entry dimensionality):
//!
//! * [`gnn`] — GNN training workloads over `emb-graph` power-law graphs:
//!   per-iteration seed batches, k-hop sampling, pre-sampling hotness
//!   profiling (GNNLab-style) and degree-based hotness (PaGraph-style);
//! * [`dlr`] — DLR inference workloads: multi-table Zipfian request
//!   streams (Criteo-TB-like heterogeneous tables, SYN-A/SYN-B synthetic
//!   uniform tables);
//! * [`datasets`] — the six named presets of Table 3 with a configurable
//!   scale divisor;
//! * [`trace`] — the UGTR access-trace codec: record a generator's
//!   per-iteration key batches and replay them bitwise (EXPERIMENTS.md,
//!   "Access-trace format").

#![deny(missing_docs)]

pub mod datasets;
pub mod dlr;
pub mod gnn;
pub mod trace;

pub use datasets::{dlr_preset, gnn_preset, DlrDataset, DlrDatasetId, GnnDataset, GnnDatasetId};
pub use dlr::DlrWorkload;
pub use gnn::{GnnModel, GnnWorkload};
pub use trace::{BatchSource, Trace, TraceError, TRACE_MAGIC, TRACE_VERSION};
