//! Deterministic access-trace record/replay codec.
//!
//! A trace captures a workload's per-iteration key batches — its entire
//! influence on the cache layer — in the versioned, seed-stamped,
//! length-prefixed binary format specified in EXPERIMENTS.md
//! ("Access-trace format"). All integers are little-endian; a trace
//! either round-trips bitwise ([`Trace::to_bytes`] /
//! [`Trace::from_bytes`]) or decoding hard-errors ([`TraceError`]).
//! Replaying never draws randomness: the recorded batches *are* the
//! stream, and feeding them into an identically built system reproduces
//! the live generator's extraction results and telemetry bitwise (see
//! DESIGN.md, "Why replay is bitwise").

use crate::{DlrWorkload, GnnWorkload};

/// The 4-byte magic opening every trace file.
pub const TRACE_MAGIC: [u8; 4] = *b"UGTR";

/// Current wire-format version. The reader hard-errors on any other
/// value; bump on any layout change, however small.
pub const TRACE_VERSION: u32 = 1;

/// Anything that emits per-GPU key batches, one call per iteration.
///
/// Both workload generators implement this, which is what lets the
/// recorder drive them generically; a decoded [`Trace`]'s records slot
/// into the same consumers.
pub trait BatchSource {
    /// Draws the next iteration's keys, one list per GPU.
    fn next_batch(&mut self) -> Vec<Vec<u32>>;
}

impl BatchSource for DlrWorkload {
    fn next_batch(&mut self) -> Vec<Vec<u32>> {
        DlrWorkload::next_batch(self)
    }
}

impl BatchSource for GnnWorkload {
    fn next_batch(&mut self) -> Vec<Vec<u32>> {
        GnnWorkload::next_batch(self)
    }
}

/// Why a trace buffer could not be decoded.
///
/// Every variant is a hard error: there is no partial or
/// version-tolerant parsing (EXPERIMENTS.md, "Versioning and
/// compatibility rules").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The buffer does not open with [`TRACE_MAGIC`].
    BadMagic {
        /// The four bytes found instead.
        found: [u8; 4],
    },
    /// The header's version is not [`TRACE_VERSION`].
    VersionMismatch {
        /// The version stamped in the header.
        found: u32,
    },
    /// The buffer ended before the named field could be read.
    Truncated {
        /// Which field was being read.
        context: &'static str,
    },
    /// The scenario name is not valid UTF-8.
    BadName,
    /// A record's `payload_len` prefix disagrees with its contents.
    RecordLengthMismatch {
        /// Zero-based record index.
        record: usize,
    },
    /// Bytes remain after the last record.
    TrailingBytes {
        /// How many.
        extra: usize,
    },
    /// A key is not below the header's `num_keys` domain.
    KeyOutOfDomain {
        /// Zero-based record index.
        record: usize,
        /// The offending key.
        key: u32,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::BadMagic { found } => {
                write!(f, "not a UGTR trace (magic {found:?})")
            }
            TraceError::VersionMismatch { found } => write!(
                f,
                "trace version {found} is not supported (this build reads only \
                 version {TRACE_VERSION}; see EXPERIMENTS.md)"
            ),
            TraceError::Truncated { context } => {
                write!(f, "trace truncated while reading {context}")
            }
            TraceError::BadName => write!(f, "trace scenario name is not valid UTF-8"),
            TraceError::RecordLengthMismatch { record } => {
                write!(f, "record {record}: payload length prefix mismatch")
            }
            TraceError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing byte(s) after the last record")
            }
            TraceError::KeyOutOfDomain { record, key } => {
                write!(f, "record {record}: key {key} outside the stamped domain")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// A decoded (or freshly captured) access trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// The generator's root seed (provenance stamp; replay never draws).
    pub seed: u64,
    /// Key lists per record (1 for serving traces).
    pub num_gpus: u32,
    /// Key-domain size; every key is `< num_keys`.
    pub num_keys: u64,
    /// The registry name of the scenario that generated the stream.
    pub scenario: String,
    /// Per-iteration key batches, outer = record, inner = GPU.
    pub records: Vec<Vec<Vec<u32>>>,
}

/// Cursor-style little-endian reads over the decode buffer.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], TraceError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(TraceError::Truncated { context })?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self, context: &'static str) -> Result<u32, TraceError> {
        let b = self.take(4, context)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, context: &'static str) -> Result<u64, TraceError> {
        let b = self.take(8, context)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}

impl Trace {
    /// Records `iters` iterations from a live generator.
    ///
    /// # Panics
    ///
    /// Panics if `iters == 0` (a trace must carry at least one record
    /// to pin `num_gpus`) or if the source changes its GPU count
    /// between iterations.
    pub fn capture<S: BatchSource>(
        source: &mut S,
        iters: usize,
        seed: u64,
        num_keys: u64,
        scenario: &str,
    ) -> Trace {
        assert!(iters > 0, "a trace needs at least one record");
        let mut records = Vec::with_capacity(iters);
        for _ in 0..iters {
            records.push(source.next_batch());
        }
        let num_gpus = records[0].len();
        assert!(
            records.iter().all(|r| r.len() == num_gpus),
            "batch source changed its GPU count mid-stream"
        );
        Trace {
            seed,
            num_gpus: num_gpus as u32,
            num_keys,
            scenario: scenario.to_string(),
            records,
        }
    }

    /// Encodes the trace into the UGTR wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&TRACE_MAGIC);
        out.extend_from_slice(&TRACE_VERSION.to_le_bytes());
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.extend_from_slice(&self.num_gpus.to_le_bytes());
        out.extend_from_slice(&self.num_keys.to_le_bytes());
        out.extend_from_slice(&(self.records.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.scenario.len() as u32).to_le_bytes());
        out.extend_from_slice(self.scenario.as_bytes());
        for record in &self.records {
            let payload: usize = record.iter().map(|keys| 4 + 4 * keys.len()).sum();
            out.extend_from_slice(&(payload as u32).to_le_bytes());
            for keys in record {
                out.extend_from_slice(&(keys.len() as u32).to_le_bytes());
                for &k in keys {
                    out.extend_from_slice(&k.to_le_bytes());
                }
            }
        }
        out
    }

    /// Decodes a UGTR buffer, validating every framing invariant.
    ///
    /// # Errors
    ///
    /// Returns the first [`TraceError`] encountered; see the variant
    /// docs for the full list of hard-error conditions.
    pub fn from_bytes(bytes: &[u8]) -> Result<Trace, TraceError> {
        let mut r = Reader { bytes, pos: 0 };
        let magic = r.take(4, "magic")?;
        if magic != TRACE_MAGIC {
            return Err(TraceError::BadMagic {
                found: [magic[0], magic[1], magic[2], magic[3]],
            });
        }
        let version = r.u32("version")?;
        if version != TRACE_VERSION {
            return Err(TraceError::VersionMismatch { found: version });
        }
        let seed = r.u64("seed")?;
        let num_gpus = r.u32("num_gpus")?;
        let num_keys = r.u64("num_keys")?;
        let record_count = r.u32("record_count")? as usize;
        let name_len = r.u32("name_len")? as usize;
        let name = r.take(name_len, "scenario name")?;
        let scenario = std::str::from_utf8(name)
            .map_err(|_| TraceError::BadName)?
            .to_string();
        let mut records = Vec::with_capacity(record_count.min(1 << 20));
        for record in 0..record_count {
            let payload_len = r.u32("record payload length")? as usize;
            let start = r.pos;
            let mut lists = Vec::with_capacity(num_gpus as usize);
            for _ in 0..num_gpus {
                let count = r.u32("key count")? as usize;
                let raw = r.take(4 * count, "keys")?;
                let mut keys = Vec::with_capacity(count);
                for c in raw.chunks_exact(4) {
                    let k = u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
                    if u64::from(k) >= num_keys {
                        return Err(TraceError::KeyOutOfDomain { record, key: k });
                    }
                    keys.push(k);
                }
                lists.push(keys);
            }
            if r.pos - start != payload_len {
                return Err(TraceError::RecordLengthMismatch { record });
            }
            records.push(lists);
        }
        if r.pos != bytes.len() {
            return Err(TraceError::TrailingBytes {
                extra: bytes.len() - r.pos,
            });
        }
        Ok(Trace {
            seed,
            num_gpus,
            num_keys,
            scenario,
            records,
        })
    }

    /// Total keys across all records and GPUs (raw, duplicates counted).
    pub fn total_keys(&self) -> u64 {
        self.records
            .iter()
            .flat_map(|r| r.iter())
            .map(|keys| keys.len() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{dlr_preset, gnn_preset, DlrDatasetId, GnnDatasetId};
    use crate::GnnModel;

    fn sample() -> Trace {
        Trace {
            seed: 0x5EED,
            num_gpus: 2,
            num_keys: 100,
            scenario: "dlr/cr@server_a".to_string(),
            records: vec![vec![vec![1, 5, 9], vec![0, 2]], vec![vec![], vec![99]]],
        }
    }

    #[test]
    fn round_trips_bitwise() {
        let t = sample();
        let bytes = t.to_bytes();
        let back = Trace::from_bytes(&bytes).unwrap();
        assert_eq!(t, back);
        assert_eq!(bytes, back.to_bytes());
    }

    #[test]
    fn version_mismatch_is_a_hard_error() {
        let mut bytes = sample().to_bytes();
        bytes[4..8].copy_from_slice(&2u32.to_le_bytes());
        assert_eq!(
            Trace::from_bytes(&bytes),
            Err(TraceError::VersionMismatch { found: 2 })
        );
    }

    #[test]
    fn bad_magic_truncation_and_trailing_are_rejected() {
        let bytes = sample().to_bytes();
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            Trace::from_bytes(&bad),
            Err(TraceError::BadMagic { .. })
        ));
        for cut in [3, 10, 30, bytes.len() - 1] {
            assert!(
                matches!(
                    Trace::from_bytes(&bytes[..cut]),
                    Err(TraceError::Truncated { .. })
                ),
                "cut at {cut}"
            );
        }
        let mut long = bytes.clone();
        long.push(0);
        assert_eq!(
            Trace::from_bytes(&long),
            Err(TraceError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn payload_length_mismatch_is_rejected() {
        let t = sample();
        let mut bytes = t.to_bytes();
        // The first record's payload_len sits right after the header.
        let header = 36 + t.scenario.len();
        let wrong = 9999u32;
        bytes[header..header + 4].copy_from_slice(&wrong.to_le_bytes());
        // Reading 9999 bytes of payload either truncates or mismatches.
        assert!(Trace::from_bytes(&bytes).is_err());
    }

    #[test]
    fn out_of_domain_keys_are_rejected() {
        let mut t = sample();
        t.records[1][1][0] = 100; // num_keys is 100, so 100 is out.
        assert_eq!(
            Trace::from_bytes(&t.to_bytes()),
            Err(TraceError::KeyOutOfDomain {
                record: 1,
                key: 100
            })
        );
    }

    #[test]
    fn captures_dlr_and_gnn_streams_verbatim() {
        let mut w = DlrWorkload::new(dlr_preset(DlrDatasetId::SynA, 65_536), 64, 4, 7);
        let mut w2 = w.clone();
        let t = Trace::capture(&mut w, 3, 7, w2.dataset().num_entries() as u64, "x");
        assert_eq!(t.num_gpus, 4);
        assert_eq!(t.records.len(), 3);
        for r in &t.records {
            assert_eq!(*r, w2.next_batch());
        }

        let d = gnn_preset(GnnDatasetId::Pa, 16_384, 5);
        let n = d.num_entries() as u64;
        let mut g = GnnWorkload::new(d, GnnModel::Gcn, 32, 2, 5);
        let mut g2 = g.clone();
        let t = Trace::capture(&mut g, 2, 5, n, "y");
        for r in &t.records {
            assert_eq!(*r, g2.next_batch());
        }
        // And the captured stream survives the wire format bitwise.
        assert_eq!(Trace::from_bytes(&t.to_bytes()).unwrap(), t);
    }
}
