//! DLR inference request streams.

use crate::datasets::DlrDataset;
use cache_policy::Hotness;
use emb_util::{seed_rng, split_seed, ZipfSampler};
use rand::rngs::StdRng;

/// A data-parallel DLR inference workload: each request carries one key
/// per embedding table (paper §8.1, Criteo layout); a batch of `B`
/// requests on a GPU therefore touches up to `B × num_tables` keys, which
/// are deduplicated before extraction as real systems do.
#[derive(Debug, Clone)]
pub struct DlrWorkload {
    dataset: DlrDataset,
    batch_size: usize,
    num_gpus: usize,
    samplers: Vec<ZipfSampler>,
    rngs: Vec<StdRng>,
}

/// Ground-truth hotness mode for DLR datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DlrHotness {
    /// Exact Zipf masses (what an oracle profiler would converge to).
    Analytic,
    /// Empirical counts over a number of profiled batches.
    Profiled {
        /// Batches to sample.
        batches: usize,
    },
}

impl DlrWorkload {
    /// Creates a workload.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0` or `num_gpus == 0`.
    pub fn new(dataset: DlrDataset, batch_size: usize, num_gpus: usize, seed: u64) -> Self {
        assert!(batch_size > 0 && num_gpus > 0);
        let samplers = dataset
            .table_sizes
            .iter()
            .map(|&n| ZipfSampler::new(n.max(1), dataset.alpha))
            .collect();
        let rngs = (0..num_gpus)
            .map(|g| seed_rng(split_seed(seed, 0xD1B + g as u64)))
            .collect();
        DlrWorkload {
            dataset,
            batch_size,
            num_gpus,
            samplers,
            rngs,
        }
    }

    /// The dataset.
    pub fn dataset(&self) -> &DlrDataset {
        &self.dataset
    }

    /// Draws the next iteration's deduplicated keys per GPU.
    ///
    /// Each GPU is one chunk on the `emb_util::pool` worker pool: GPU
    /// `g` draws exclusively from `rngs[g]` (already split per GPU via
    /// `split_seed`), so the streams are identical at any thread count
    /// — and identical to the original sequential loop.
    pub fn next_batch(&mut self) -> Vec<Vec<u32>> {
        let samplers = &self.samplers;
        let dataset = &self.dataset;
        let batch_size = self.batch_size;
        let work: Vec<&mut StdRng> = self.rngs.iter_mut().collect();
        emb_util::pool::par_map_owned(work, |_g, rng| {
            let mut keys: Vec<u32> = Vec::with_capacity(batch_size * dataset.table_sizes.len());
            for _ in 0..batch_size {
                for (t, sampler) in samplers.iter().enumerate() {
                    let k = sampler.sample(rng);
                    keys.push((dataset.table_offsets[t] + k) as u32);
                }
            }
            keys.sort_unstable();
            keys.dedup();
            keys
        })
    }

    /// Mean unique keys per GPU per iteration over `iters` batches.
    pub fn measure_accesses_per_iter(&mut self, iters: usize) -> f64 {
        let mut total = 0usize;
        for _ in 0..iters.max(1) {
            total += self.next_batch().iter().map(|b| b.len()).sum::<usize>();
        }
        total as f64 / (iters.max(1) * self.num_gpus) as f64
    }

    /// Hotness over the global key space.
    pub fn hotness(&mut self, mode: DlrHotness) -> Hotness {
        match mode {
            DlrHotness::Analytic => {
                let mut w = Vec::with_capacity(self.dataset.num_entries());
                for &n in &self.dataset.table_sizes {
                    // Unnormalized Zipf mass per in-table rank; tables share
                    // the request rate, so masses are comparable as-is.
                    let norm: f64 = (1..=n).map(|r| (r as f64).powf(-self.dataset.alpha)).sum();
                    for r in 0..n {
                        w.push(((r + 1) as f64).powf(-self.dataset.alpha) / norm);
                    }
                }
                Hotness::new(w)
            }
            DlrHotness::Profiled { batches } => {
                // Count raw request keys (pre-dedup): deduplicated batch
                // membership saturates for hot keys and destroys ordering.
                // Profiling parallelizes per GPU: each GPU walks its own
                // RNG through all `batches`, and per-GPU u64 counts are
                // summed in GPU order — identical totals at any thread
                // count, and RNG streams identical to the sequential
                // batch-major loop (each stream was per-GPU already).
                let n = self.dataset.num_entries();
                let samplers = &self.samplers;
                let dataset = &self.dataset;
                let batch_size = self.batch_size;
                let work: Vec<&mut StdRng> = self.rngs.iter_mut().collect();
                let per_gpu = emb_util::pool::par_map_owned(work, |_g, rng| {
                    let mut counts = vec![0u64; n];
                    for _ in 0..batches {
                        for _ in 0..batch_size {
                            for (t, sampler) in samplers.iter().enumerate() {
                                let k = sampler.sample(rng);
                                counts[(dataset.table_offsets[t] + k) as usize] += 1;
                            }
                        }
                    }
                    counts
                });
                let mut counts = vec![0u64; n];
                for c in per_gpu {
                    for (total, v) in counts.iter_mut().zip(c) {
                        *total += v;
                    }
                }
                Hotness::from_counts(&counts)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{dlr_preset, DlrDatasetId};

    fn workload(id: DlrDatasetId) -> DlrWorkload {
        DlrWorkload::new(dlr_preset(id, 4096), 512, 4, 11)
    }

    #[test]
    fn batch_shape_and_dedup() {
        let mut w = workload(DlrDatasetId::SynA);
        let b = w.next_batch();
        assert_eq!(b.len(), 4);
        for keys in &b {
            // ≤ batch × tables, deduped and sorted.
            assert!(keys.len() <= 512 * 100);
            assert!(keys.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn keys_land_in_their_tables() {
        let mut w = workload(DlrDatasetId::Cr);
        let d = w.dataset().clone();
        let total = d.num_entries() as u32;
        for keys in w.next_batch() {
            for k in keys {
                assert!(k < total);
            }
        }
    }

    #[test]
    fn higher_alpha_dedups_harder() {
        // SYN-B (α=1.4) is more skewed than SYN-A (α=1.2): more duplicate
        // draws → fewer unique keys per batch.
        let mut a = workload(DlrDatasetId::SynA);
        let mut b = workload(DlrDatasetId::SynB);
        let ua = a.measure_accesses_per_iter(3);
        let ub = b.measure_accesses_per_iter(3);
        assert!(ub < ua, "SYN-B {ub} vs SYN-A {ua}");
    }

    #[test]
    fn analytic_hotness_matches_profiled_ranking() {
        let mut w = DlrWorkload::new(dlr_preset(DlrDatasetId::SynA, 65536), 512, 2, 3);
        let analytic = w.hotness(DlrHotness::Analytic);
        let profiled = w.hotness(DlrHotness::Profiled { batches: 20 });
        // Per-table rank-0 keys must dominate in both.
        let d = w.dataset().clone();
        let top_analytic: std::collections::HashSet<u32> = analytic
            .ranking()
            .into_iter()
            .take(d.num_tables())
            .collect();
        let top_profiled: std::collections::HashSet<u32> = profiled
            .ranking()
            .into_iter()
            .take(d.num_tables())
            .collect();
        let overlap = top_analytic.intersection(&top_profiled).count();
        assert!(
            overlap * 2 >= d.num_tables(),
            "{overlap}/{} hot keys agree",
            d.num_tables()
        );
    }

    #[test]
    fn analytic_hotness_sums_to_tables() {
        let mut w = workload(DlrDatasetId::SynA);
        let h = w.hotness(DlrHotness::Analytic);
        // Each of the 100 tables contributes probability mass 1.
        assert!((h.total() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn deterministic_stream() {
        let mut a = workload(DlrDatasetId::SynB);
        let mut b = workload(DlrDatasetId::SynB);
        assert_eq!(a.next_batch(), b.next_batch());
    }

    #[test]
    fn stream_is_identical_at_any_thread_count() {
        let baseline = emb_util::pool::with_threads(1, || {
            let mut w = workload(DlrDatasetId::SynA);
            let batches: Vec<_> = (0..3).map(|_| w.next_batch()).collect();
            let hot = w.hotness(DlrHotness::Profiled { batches: 2 });
            (batches, hot.ranking())
        });
        for threads in [2, 8] {
            let run = emb_util::pool::with_threads(threads, || {
                let mut w = workload(DlrDatasetId::SynA);
                let batches: Vec<_> = (0..3).map(|_| w.next_batch()).collect();
                let hot = w.hotness(DlrHotness::Profiled { batches: 2 });
                (batches, hot.ranking())
            });
            assert_eq!(baseline, run, "threads {threads}");
        }
    }
}
