//! Dataset presets (paper Table 3), scaled.
//!
//! Each preset preserves the shape parameters that matter for caching —
//! edges-per-vertex, degree/key skew, embedding dimension and dtype width
//! — while dividing entity counts by a configurable `scale_div` so a
//! development machine can hold the data. Cache experiments sweep *cache
//! ratio* (fraction of entries cached), which is scale-invariant.

use emb_graph::{generate, Csr, GraphConfig};
use emb_util::{seed_rng, split_seed};
use rand::seq::SliceRandom;

/// GNN dataset identifiers (Table 3, top).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GnnDatasetId {
    /// OGB-Papers100M: 111 M vertices, 3.2 B edges, dim 128 (f32).
    Pa,
    /// Com-Friendster: 65.6 M vertices, 3.6 B edges, dim 256 (f32).
    Cf,
    /// OGB-MAG240M: 232 M vertices, 3.2 B edges, dim 768 (f16).
    Mag,
}

impl GnnDatasetId {
    /// All GNN presets in paper order.
    pub const ALL: [GnnDatasetId; 3] = [GnnDatasetId::Pa, GnnDatasetId::Cf, GnnDatasetId::Mag];

    /// The paper's short name.
    pub fn name(self) -> &'static str {
        match self {
            GnnDatasetId::Pa => "PA",
            GnnDatasetId::Cf => "CF",
            GnnDatasetId::Mag => "MAG",
        }
    }
}

/// A scaled GNN dataset: graph, embedding geometry, training seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct GnnDataset {
    /// Paper name (PA/CF/MAG).
    pub name: String,
    /// The (scaled) graph.
    pub graph: Csr,
    /// Embedding dimension.
    pub dim: usize,
    /// Bytes per embedding entry (dim × dtype width; MAG is f16).
    pub entry_bytes: usize,
    /// Training vertex ids.
    pub train_set: Vec<u32>,
    /// Scale divisor applied to the paper-scale vertex count.
    pub scale_div: usize,
    /// Access skew (Zipf exponent used for edge targets).
    pub skew: f64,
}

impl GnnDataset {
    /// Number of embedding entries (= vertices).
    pub fn num_entries(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Embedding volume in bytes at this scale (the paper's `VolumeE`).
    pub fn volume_bytes(&self) -> u64 {
        self.num_entries() as u64 * self.entry_bytes as u64
    }
}

/// Builds a scaled GNN dataset preset.
///
/// `scale_div` divides the paper-scale vertex count (e.g. 256 turns PA's
/// 111 M vertices into ~433 K). Training sets are ~1 % of vertices,
/// mirroring OGB splits.
///
/// # Panics
///
/// Panics if `scale_div == 0` or the scaled vertex count is zero.
pub fn gnn_preset(id: GnnDatasetId, scale_div: usize, seed: u64) -> GnnDataset {
    assert!(scale_div > 0, "scale divisor must be positive");
    // (paper vertices, paper edges, dim, dtype bytes, skew)
    let (vertices, edges, dim, dtype, skew): (u64, u64, usize, usize, f64) = match id {
        GnnDatasetId::Pa => (111_000_000, 3_200_000_000, 128, 4, 1.15),
        GnnDatasetId::Cf => (65_600_000, 3_600_000_000, 256, 4, 1.00),
        GnnDatasetId::Mag => (232_000_000, 3_200_000_000, 768, 2, 1.10),
    };
    let n = (vertices / scale_div as u64).max(1) as usize;
    let avg_degree = edges.div_ceil(vertices).max(1) as usize;
    let graph = generate(&GraphConfig {
        num_vertices: n,
        avg_degree,
        skew,
        seed: split_seed(seed, id as u64),
    });
    // ~1% of vertices train, selected uniformly.
    let mut rng = seed_rng(split_seed(seed, 0x7247 + id as u64));
    let train_n = (n / 100).max(1);
    let mut ids: Vec<u32> = (0..n as u32).collect();
    ids.shuffle(&mut rng);
    ids.truncate(train_n);
    GnnDataset {
        name: id.name().to_string(),
        graph,
        dim,
        entry_bytes: dim * dtype,
        train_set: ids,
        scale_div,
        skew,
    }
}

/// DLR dataset identifiers (Table 3, bottom).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DlrDatasetId {
    /// Criteo-TB: 26 heterogeneous tables, 882 M entries total, dim 128.
    Cr,
    /// Synthetic: 100 tables × 8 M entries, α = 1.2, dim 128.
    SynA,
    /// Synthetic: 100 tables × 8 M entries, α = 1.4, dim 128.
    SynB,
}

impl DlrDatasetId {
    /// All DLR presets in paper order.
    pub const ALL: [DlrDatasetId; 3] = [DlrDatasetId::Cr, DlrDatasetId::SynA, DlrDatasetId::SynB];

    /// The paper's short name.
    pub fn name(self) -> &'static str {
        match self {
            DlrDatasetId::Cr => "CR",
            DlrDatasetId::SynA => "SYN-A",
            DlrDatasetId::SynB => "SYN-B",
        }
    }
}

/// A scaled DLR dataset: table geometry and key-skew parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct DlrDataset {
    /// Paper name.
    pub name: String,
    /// Entries per embedding table.
    pub table_sizes: Vec<u64>,
    /// Global key offset of each table (prefix sums of `table_sizes`).
    pub table_offsets: Vec<u64>,
    /// Embedding dimension (f32).
    pub dim: usize,
    /// Bytes per entry.
    pub entry_bytes: usize,
    /// Zipf exponent of per-table key draws.
    pub alpha: f64,
    /// Scale divisor applied to paper-scale table sizes.
    pub scale_div: usize,
}

impl DlrDataset {
    /// Total entries across all tables.
    pub fn num_entries(&self) -> usize {
        self.table_sizes.iter().sum::<u64>() as usize
    }

    /// Number of tables (keys per request).
    pub fn num_tables(&self) -> usize {
        self.table_sizes.len()
    }

    /// Embedding volume in bytes at this scale.
    pub fn volume_bytes(&self) -> u64 {
        self.num_entries() as u64 * self.entry_bytes as u64
    }
}

/// Criteo-TB categorical cardinalities are wildly heterogeneous: a few
/// huge tables dominate. These fractions of the 882 M total approximate
/// the published cardinality profile.
const CR_TABLE_FRACTIONS: [f64; 26] = [
    0.32, 0.22, 0.14, 0.09, 0.065, 0.045, 0.03, 0.02, 0.013, 0.009, 0.006, 0.004, 0.003, 0.002,
    0.0015, 0.001, 0.0008, 0.0006, 0.0005, 0.0004, 0.0003, 0.00025, 0.0002, 0.00015, 0.0001,
    0.00008,
];

/// Builds a scaled DLR dataset preset.
///
/// # Panics
///
/// Panics if `scale_div == 0`.
pub fn dlr_preset(id: DlrDatasetId, scale_div: usize) -> DlrDataset {
    assert!(scale_div > 0, "scale divisor must be positive");
    let (table_sizes, alpha): (Vec<u64>, f64) = match id {
        DlrDatasetId::Cr => {
            let total = 882_000_000u64 / scale_div as u64;
            (
                CR_TABLE_FRACTIONS
                    .iter()
                    .map(|f| ((total as f64 * f) as u64).max(4))
                    .collect(),
                // Criteo click keys are highly skewed; α≈1.1 reproduces the
                // hit-rate curves reported for CR.
                1.1,
            )
        }
        DlrDatasetId::SynA => (vec![8_000_000u64 / scale_div as u64; 100], 1.2),
        DlrDatasetId::SynB => (vec![8_000_000u64 / scale_div as u64; 100], 1.4),
    };
    let mut table_offsets = Vec::with_capacity(table_sizes.len());
    let mut acc = 0u64;
    for &s in &table_sizes {
        table_offsets.push(acc);
        acc += s;
    }
    DlrDataset {
        name: id.name().to_string(),
        table_sizes,
        table_offsets,
        dim: 128,
        entry_bytes: 128 * 4,
        alpha,
        scale_div,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnn_presets_scale_consistently() {
        let d = gnn_preset(GnnDatasetId::Pa, 1024, 1);
        assert_eq!(d.num_entries(), 111_000_000 / 1024);
        // Edges per vertex ≈ paper's ratio (3.2B / 111M ≈ 29).
        let epv = d.graph.num_edges() as f64 / d.num_entries() as f64;
        assert!((20.0..40.0).contains(&epv), "edges/vertex {epv}");
        assert_eq!(d.entry_bytes, 512);
    }

    #[test]
    fn mag_uses_f16() {
        let d = gnn_preset(GnnDatasetId::Mag, 4096, 1);
        assert_eq!(d.entry_bytes, 1536);
        assert_eq!(d.dim, 768);
    }

    #[test]
    fn train_set_is_one_percent_unique() {
        let d = gnn_preset(GnnDatasetId::Cf, 1024, 2);
        let n = d.num_entries();
        assert_eq!(d.train_set.len(), n / 100);
        let mut t = d.train_set.clone();
        t.sort_unstable();
        t.dedup();
        assert_eq!(t.len(), d.train_set.len());
    }

    #[test]
    fn gnn_preset_deterministic() {
        let a = gnn_preset(GnnDatasetId::Pa, 2048, 9);
        let b = gnn_preset(GnnDatasetId::Pa, 2048, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn dlr_cr_is_heterogeneous() {
        let d = dlr_preset(DlrDatasetId::Cr, 256);
        assert_eq!(d.num_tables(), 26);
        assert!(d.table_sizes[0] > d.table_sizes[25] * 100);
        // Offsets are proper prefix sums.
        for t in 1..26 {
            assert_eq!(
                d.table_offsets[t],
                d.table_offsets[t - 1] + d.table_sizes[t - 1]
            );
        }
    }

    #[test]
    fn syn_presets_match_paper_parameters() {
        let a = dlr_preset(DlrDatasetId::SynA, 256);
        let b = dlr_preset(DlrDatasetId::SynB, 256);
        assert_eq!(a.num_tables(), 100);
        assert_eq!(a.alpha, 1.2);
        assert_eq!(b.alpha, 1.4);
        assert_eq!(a.table_sizes[0], 8_000_000 / 256);
    }

    #[test]
    fn volume_scales_with_divisor() {
        let big = dlr_preset(DlrDatasetId::SynA, 128);
        let small = dlr_preset(DlrDatasetId::SynA, 256);
        let ratio = big.volume_bytes() as f64 / small.volume_bytes() as f64;
        assert!((ratio - 2.0).abs() < 0.01);
    }
}
