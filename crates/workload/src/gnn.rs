//! GNN training batch streams and hotness profiling.

use crate::datasets::GnnDataset;
use cache_policy::Hotness;
use emb_graph::FanoutSampler;
use emb_util::{seed_rng, split_seed};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// GNN model presets evaluated in the paper (§8.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GnnModel {
    /// 3-hop GCN.
    Gcn,
    /// 2-hop supervised GraphSAGE.
    GraphSageSupervised,
    /// 2-hop unsupervised GraphSAGE with negative sampling.
    GraphSageUnsupervised,
}

impl GnnModel {
    /// All models in paper order.
    pub const ALL: [GnnModel; 3] = [
        GnnModel::Gcn,
        GnnModel::GraphSageSupervised,
        GnnModel::GraphSageUnsupervised,
    ];

    /// The paper's display name.
    pub fn name(self) -> &'static str {
        match self {
            GnnModel::Gcn => "GCN",
            GnnModel::GraphSageSupervised => "SAGE Sup.",
            GnnModel::GraphSageUnsupervised => "SAGE Unsup.",
        }
    }

    /// The neighbourhood sampler this model uses.
    pub fn sampler(self) -> FanoutSampler {
        match self {
            GnnModel::Gcn => FanoutSampler::gcn(),
            GnnModel::GraphSageSupervised => FanoutSampler::graphsage(),
            GnnModel::GraphSageUnsupervised => FanoutSampler::graphsage_unsupervised(),
        }
    }

    /// Hidden layers of the dense part (for the MLP cost model).
    pub fn mlp_layers(self) -> usize {
        match self {
            GnnModel::Gcn => 3,
            _ => 2,
        }
    }
}

/// A data-parallel GNN training workload: per iteration, each GPU draws a
/// seed mini-batch from the training set and samples its k-hop
/// neighbourhood; the unique visited vertices are the embedding keys.
#[derive(Debug, Clone)]
pub struct GnnWorkload {
    dataset: GnnDataset,
    model: GnnModel,
    batch_size: usize,
    num_gpus: usize,
    rngs: Vec<StdRng>,
    epoch_order: Vec<u32>,
    cursor: usize,
}

impl GnnWorkload {
    /// Creates a workload.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0` or `num_gpus == 0`.
    pub fn new(
        dataset: GnnDataset,
        model: GnnModel,
        batch_size: usize,
        num_gpus: usize,
        seed: u64,
    ) -> Self {
        assert!(batch_size > 0 && num_gpus > 0);
        let mut order = dataset.train_set.clone();
        let mut rng = seed_rng(split_seed(seed, 0xE70C));
        order.shuffle(&mut rng);
        let rngs = (0..num_gpus)
            .map(|g| seed_rng(split_seed(seed, 0x5A17 + g as u64)))
            .collect();
        GnnWorkload {
            dataset,
            model,
            batch_size,
            num_gpus,
            rngs,
            epoch_order: order,
            cursor: 0,
        }
    }

    /// The dataset.
    pub fn dataset(&self) -> &GnnDataset {
        &self.dataset
    }

    /// The model.
    pub fn model(&self) -> GnnModel {
        self.model
    }

    /// Iterations per epoch under data parallelism.
    pub fn iters_per_epoch(&self) -> usize {
        let global_batch = self.batch_size * self.num_gpus;
        self.epoch_order.len().div_ceil(global_batch).max(1)
    }

    /// Draws one GPU's seed mini-batch, wrapping the epoch order.
    fn draw_seeds(&mut self) -> Vec<u32> {
        let mut seeds = Vec::with_capacity(self.batch_size);
        for _ in 0..self.batch_size {
            if self.cursor >= self.epoch_order.len() {
                self.cursor = 0;
            }
            seeds.push(self.epoch_order[self.cursor]);
            self.cursor += 1;
        }
        seeds
    }

    /// Draws the next iteration's unique keys per GPU.
    ///
    /// The shared epoch cursor is walked serially (seed mini-batches are
    /// assigned in GPU order as before); neighbourhood sampling — the
    /// expensive part — then runs one chunk per GPU on the
    /// `emb_util::pool` worker pool with each GPU's own split RNG, so
    /// batches are identical at any thread count.
    pub fn next_batch(&mut self) -> Vec<Vec<u32>> {
        let sampler = self.model.sampler();
        let seeds: Vec<Vec<u32>> = (0..self.num_gpus).map(|_| self.draw_seeds()).collect();
        let graph = &self.dataset.graph;
        let work: Vec<(&mut StdRng, Vec<u32>)> = self.rngs.iter_mut().zip(seeds).collect();
        emb_util::pool::par_map_owned(work, |_g, (rng, seeds)| {
            sampler.sample(graph, &seeds, rng).unique_keys
        })
    }

    /// Mean unique keys per GPU per iteration, measured over `iters`
    /// sampled batches (used to scale the solver's time estimate).
    pub fn measure_accesses_per_iter(&mut self, iters: usize) -> f64 {
        let mut total = 0usize;
        for _ in 0..iters.max(1) {
            let batch = self.next_batch();
            total += batch.iter().map(|b| b.len()).sum::<usize>();
        }
        total as f64 / (iters.max(1) * self.num_gpus) as f64
    }

    /// Pre-sampling hotness (GNNLab-style, §6.1): counts raw (pre-dedup)
    /// vertex visits over `iters` sampled iterations. Deduplicated counts
    /// would saturate at one per batch and lose the frequency ordering.
    pub fn profile_hotness(&mut self, iters: usize) -> Hotness {
        let sampler = self.model.sampler();
        let n = self.dataset.num_entries();
        // Walk the shared cursor serially so seed assignment stays in
        // (iteration, GPU) order, then sample each GPU's iterations as
        // one pool chunk with its own RNG. Per-GPU u64 visit counts are
        // summed in GPU order; totals are identical at any thread count.
        let mut seed_batches: Vec<Vec<Vec<u32>>> = vec![Vec::with_capacity(iters); self.num_gpus];
        for _ in 0..iters {
            for g in 0..self.num_gpus {
                let seeds = self.draw_seeds();
                seed_batches[g].push(seeds);
            }
        }
        let graph = &self.dataset.graph;
        let work: Vec<(&mut StdRng, Vec<Vec<u32>>)> =
            self.rngs.iter_mut().zip(seed_batches).collect();
        let per_gpu = emb_util::pool::par_map_owned(work, |_g, (rng, batches)| {
            let mut counts = vec![0u64; n];
            for seeds in &batches {
                let batch = sampler.sample(graph, seeds, rng);
                for k in batch.visits {
                    counts[k as usize] += 1;
                }
            }
            counts
        });
        let mut counts = vec![0u64; n];
        for c in per_gpu {
            for (total, v) in counts.iter_mut().zip(c) {
                *total += v;
            }
        }
        Hotness::from_counts(&counts)
    }

    /// Degree-based hotness (PaGraph-style, §6.1): in-degree as the
    /// access-frequency proxy. No profiling epoch needed.
    pub fn degree_hotness(&self) -> Hotness {
        Hotness::from_counts(&self.dataset.graph.in_degrees())
    }
}

/// Uniform random seed batches (for tests needing raw seed draws).
pub fn random_seeds<R: Rng + ?Sized>(train: &[u32], n: usize, rng: &mut R) -> Vec<u32> {
    (0..n)
        .map(|_| train[rng.gen_range(0..train.len())])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{gnn_preset, GnnDatasetId};

    fn workload(model: GnnModel) -> GnnWorkload {
        let d = gnn_preset(GnnDatasetId::Pa, 2048, 5);
        GnnWorkload::new(d, model, 256, 4, 7)
    }

    #[test]
    fn batches_have_one_list_per_gpu() {
        let mut w = workload(GnnModel::GraphSageSupervised);
        let b = w.next_batch();
        assert_eq!(b.len(), 4);
        for keys in &b {
            assert!(keys.len() >= 256, "expansion should exceed seeds");
        }
    }

    #[test]
    fn unsupervised_touches_more_keys() {
        let mut sup = workload(GnnModel::GraphSageSupervised);
        let mut unsup = workload(GnnModel::GraphSageUnsupervised);
        let a: usize = sup.next_batch().iter().map(|b| b.len()).sum();
        let b: usize = unsup.next_batch().iter().map(|b| b.len()).sum();
        assert!(b > a, "unsup {b} vs sup {a}");
    }

    #[test]
    fn profile_hotness_is_skewed_and_degree_correlated() {
        let mut w = workload(GnnModel::GraphSageSupervised);
        let profiled = w.profile_hotness(8);
        assert!(profiled.total() > 0.0);
        let degree = w.degree_hotness();
        // Top-100 by profile should heavily overlap top-100 by degree.
        let top_p: std::collections::HashSet<u32> =
            profiled.ranking().into_iter().take(100).collect();
        let top_d: std::collections::HashSet<u32> =
            degree.ranking().into_iter().take(100).collect();
        let overlap = top_p.intersection(&top_d).count();
        assert!(overlap >= 50, "only {overlap}/100 overlap");
    }

    #[test]
    fn iters_per_epoch_covers_train_set() {
        let w = workload(GnnModel::Gcn);
        let n_train = w.dataset().train_set.len();
        assert_eq!(w.iters_per_epoch(), n_train.div_ceil(256 * 4).max(1));
    }

    #[test]
    fn measure_accesses_is_stable() {
        let mut w = workload(GnnModel::GraphSageSupervised);
        let a = w.measure_accesses_per_iter(3);
        assert!(a > 256.0);
    }

    #[test]
    fn deterministic_stream() {
        let mut a = workload(GnnModel::Gcn);
        let mut b = workload(GnnModel::Gcn);
        assert_eq!(a.next_batch(), b.next_batch());
        assert_eq!(a.next_batch(), b.next_batch());
    }

    #[test]
    fn stream_is_identical_at_any_thread_count() {
        let run = |threads: usize| {
            emb_util::pool::with_threads(threads, || {
                let mut w = workload(GnnModel::GraphSageSupervised);
                let batches: Vec<_> = (0..3).map(|_| w.next_batch()).collect();
                let hot = w.profile_hotness(2);
                (batches, hot.ranking())
            })
        };
        let baseline = run(1);
        for threads in [2, 8] {
            assert_eq!(baseline, run(threads), "threads {threads}");
        }
    }
}
