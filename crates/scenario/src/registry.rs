//! The registry proper: platform/policy identifiers, scenario
//! definitions, and the builtin catalog.

use crate::knobs::{Scenario, SEED};
use cache_policy::Hotness;
use emb_workload::{DlrDatasetId, DlrWorkload, GnnDatasetId, GnnModel, GnnWorkload};
use gpu_platform::{GpuSpec, Platform};
use std::sync::OnceLock;

/// The platforms scenarios run on, resolvable by registry name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlatformId {
    /// `server_a` — 4×V100-16GB, partially connected NVLink (§8.1).
    ServerA,
    /// `server_b` — 8×V100-32GB DGX-1 (§8.1).
    ServerB,
    /// `server_c` — 8×A100-80GB over NVSwitch (§8.1).
    ServerC,
    /// `a100_80` — the single A100-80GB of Table 1.
    SingleA100,
}

impl PlatformId {
    /// Every platform, in registry order.
    pub const ALL: [PlatformId; 4] = [
        PlatformId::ServerA,
        PlatformId::ServerB,
        PlatformId::ServerC,
        PlatformId::SingleA100,
    ];

    /// The three multi-GPU testbeds of §8.1, in figure order.
    pub const SERVERS: [PlatformId; 3] = [
        PlatformId::ServerA,
        PlatformId::ServerB,
        PlatformId::ServerC,
    ];

    /// The registry name (`server_a`, `server_b`, `server_c`,
    /// `a100_80`).
    pub fn name(self) -> &'static str {
        match self {
            PlatformId::ServerA => "server_a",
            PlatformId::ServerB => "server_b",
            PlatformId::ServerC => "server_c",
            PlatformId::SingleA100 => "a100_80",
        }
    }

    /// Parses a registry name back to the identifier.
    pub fn parse(name: &str) -> Option<PlatformId> {
        PlatformId::ALL.into_iter().find(|p| p.name() == name)
    }

    /// Builds the platform, exactly as the figure modules did before
    /// the registry existed (byte-identical downstream results).
    pub fn resolve(self) -> Platform {
        match self {
            PlatformId::ServerA => Platform::server_a(),
            PlatformId::ServerB => Platform::server_b(),
            PlatformId::ServerC => Platform::server_c(),
            PlatformId::SingleA100 => Platform::single(GpuSpec::a100(80), 1 << 40),
        }
    }

    /// The platform's GPU count (without building link tables).
    pub fn num_gpus(self) -> usize {
        match self {
            PlatformId::ServerA => 4,
            PlatformId::ServerB | PlatformId::ServerC => 8,
            PlatformId::SingleA100 => 1,
        }
    }
}

/// The cache policies / systems a scenario can be replayed under.
///
/// Mirrors `ugache::baselines::SystemKind` by name; the mapping lives
/// in the bench crate so this crate stays free of the simulator stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyId {
    /// This paper's system (solver placement + factored extraction).
    UGache,
    /// GNNLab-style replication cache.
    GnnLab,
    /// WholeGraph: strict partition, peer access.
    WholeGraph,
    /// PartU: partition with CPU fallback and clique support.
    PartU,
    /// RepU: replication on PartU's codebase.
    RepU,
    /// Quiver-style clique partition.
    Quiver,
    /// HPS: replication + LRU online-eviction overhead.
    Hps,
    /// SOK: partition + message-based extraction.
    Sok,
}

impl PolicyId {
    /// Every policy, in paper order.
    pub const ALL: [PolicyId; 8] = [
        PolicyId::UGache,
        PolicyId::GnnLab,
        PolicyId::WholeGraph,
        PolicyId::PartU,
        PolicyId::RepU,
        PolicyId::Quiver,
        PolicyId::Hps,
        PolicyId::Sok,
    ];

    /// The registry name (lowercase, e.g. `ugache`, `partu`).
    pub fn name(self) -> &'static str {
        match self {
            PolicyId::UGache => "ugache",
            PolicyId::GnnLab => "gnnlab",
            PolicyId::WholeGraph => "wholegraph",
            PolicyId::PartU => "partu",
            PolicyId::RepU => "repu",
            PolicyId::Quiver => "quiver",
            PolicyId::Hps => "hps",
            PolicyId::Sok => "sok",
        }
    }

    /// Parses a registry name back to the identifier.
    pub fn parse(name: &str) -> Option<PolicyId> {
        PolicyId::ALL.into_iter().find(|p| p.name() == name)
    }
}

/// The workload family a scenario generates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadSpec {
    /// GNN training batch stream (k-hop sampled unique keys per GPU).
    Gnn {
        /// Graph dataset preset.
        dataset: GnnDatasetId,
        /// Model (sampler fan-out + MLP depth).
        model: GnnModel,
    },
    /// DLR inference request stream (deduplicated multi-table keys).
    Dlr {
        /// Table-layout preset.
        dataset: DlrDatasetId,
    },
    /// The online serving sweep's Zipfian client population.
    ServeZipf,
}

/// Lowercase dataset slug used in scenario names.
fn gnn_slug(d: GnnDatasetId) -> &'static str {
    match d {
        GnnDatasetId::Pa => "pa",
        GnnDatasetId::Cf => "cf",
        GnnDatasetId::Mag => "mag",
    }
}

/// Lowercase dataset slug used in scenario names.
fn dlr_slug(d: DlrDatasetId) -> &'static str {
    match d {
        DlrDatasetId::Cr => "cr",
        DlrDatasetId::SynA => "syn_a",
        DlrDatasetId::SynB => "syn_b",
    }
}

/// Lowercase model slug used in scenario names.
fn model_slug(m: GnnModel) -> &'static str {
    match m {
        GnnModel::Gcn => "gcn",
        GnnModel::GraphSageSupervised => "sage_sup",
        GnnModel::GraphSageUnsupervised => "sage_unsup",
    }
}

impl WorkloadSpec {
    /// The scenario name this workload gets on `platform`
    /// (`<family>/<dataset>[/<model>]@<platform>`).
    pub fn scenario_name(self, platform: PlatformId) -> String {
        match self {
            WorkloadSpec::Gnn { dataset, model } => format!(
                "gnn/{}/{}@{}",
                gnn_slug(dataset),
                model_slug(model),
                platform.name()
            ),
            WorkloadSpec::Dlr { dataset } => {
                format!("dlr/{}@{}", dlr_slug(dataset), platform.name())
            }
            WorkloadSpec::ServeZipf => format!("serve/zipf@{}", platform.name()),
        }
    }

    /// Human-readable workload label for the catalog (paper display
    /// names).
    pub fn label(self) -> String {
        match self {
            WorkloadSpec::Gnn { dataset, model } => {
                format!("GNN {} / {}", model.name(), dataset.name())
            }
            WorkloadSpec::Dlr { dataset } => format!("DLR {}", dataset.name()),
            WorkloadSpec::ServeZipf => "Serving Zipf clients".to_string(),
        }
    }
}

/// One registered scenario: a named workload × platform point with the
/// default replay policy and the root seed its streams split from.
#[derive(Debug, Clone)]
pub struct ScenarioDef {
    /// Unique name (`<family>/<dataset>[/<model>]@<platform>`).
    pub name: String,
    /// The workload family point.
    pub workload: WorkloadSpec,
    /// The platform the workload is sized for.
    pub platform: PlatformId,
    /// Default (reference) policy `replay` uses for this scenario.
    /// Figures sweep several policies over the same stream.
    pub policy: PolicyId,
    /// Root seed of every stream the generator draws.
    pub seed: u64,
    /// CLI targets that consume this scenario (catalog metadata).
    pub consumers: Vec<&'static str>,
}

impl ScenarioDef {
    /// Builds the platform.
    pub fn resolve_platform(&self) -> Platform {
        self.platform.resolve()
    }

    /// Builds the GNN workload plus profiled hotness, exactly as
    /// [`Scenario::gnn`] does (the construction figures used inline
    /// before the registry existed).
    ///
    /// # Panics
    ///
    /// Panics if this scenario's workload is not [`WorkloadSpec::Gnn`].
    pub fn gnn(&self, knobs: &Scenario) -> (GnnWorkload, Hotness) {
        let WorkloadSpec::Gnn { dataset, model } = self.workload else {
            panic!("scenario `{}` is not a GNN workload", self.name);
        };
        knobs.gnn(dataset, model, &self.resolve_platform())
    }

    /// Builds the DLR workload plus analytic hotness, exactly as
    /// [`Scenario::dlr`] does.
    ///
    /// # Panics
    ///
    /// Panics if this scenario's workload is not [`WorkloadSpec::Dlr`].
    pub fn dlr(&self, knobs: &Scenario) -> (DlrWorkload, Hotness) {
        let WorkloadSpec::Dlr { dataset } = self.workload else {
            panic!("scenario `{}` is not a DLR workload", self.name);
        };
        knobs.dlr(dataset, &self.resolve_platform())
    }
}

/// A validated, collision-free set of scenario definitions.
#[derive(Debug, Clone)]
pub struct Registry {
    defs: Vec<ScenarioDef>,
}

impl Registry {
    /// Builds a registry, rejecting duplicate names.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first colliding scenario name.
    pub fn new(defs: Vec<ScenarioDef>) -> Result<Registry, String> {
        let mut seen = std::collections::HashSet::new();
        for d in &defs {
            if !seen.insert(d.name.clone()) {
                return Err(format!("duplicate scenario name `{}` in registry", d.name));
            }
        }
        Ok(Registry { defs })
    }

    /// Every definition, in catalog order.
    pub fn defs(&self) -> &[ScenarioDef] {
        &self.defs
    }

    /// Looks a scenario up by name.
    pub fn get(&self, name: &str) -> Option<&ScenarioDef> {
        self.defs.iter().find(|d| d.name == name)
    }

    /// Typed lookup for a GNN scenario.
    pub fn gnn_def(
        &self,
        dataset: GnnDatasetId,
        model: GnnModel,
        platform: PlatformId,
    ) -> Option<&ScenarioDef> {
        self.get(&WorkloadSpec::Gnn { dataset, model }.scenario_name(platform))
    }

    /// Typed lookup for a DLR scenario.
    pub fn dlr_def(&self, dataset: DlrDatasetId, platform: PlatformId) -> Option<&ScenarioDef> {
        self.get(&WorkloadSpec::Dlr { dataset }.scenario_name(platform))
    }

    /// The serving scenario.
    pub fn serve_def(&self) -> Option<&ScenarioDef> {
        self.get(&WorkloadSpec::ServeZipf.scenario_name(PlatformId::ServerA))
    }
}

/// CLI targets consuming a GNN scenario (kept next to the catalog so
/// `repro scenarios --check` pins it against SCENARIOS.md).
fn gnn_consumers(d: GnnDatasetId, m: GnnModel, p: PlatformId) -> Vec<&'static str> {
    use GnnDatasetId as D;
    use GnnModel as M;
    let mut c: Vec<&'static str> = Vec::new();
    if p == PlatformId::ServerC && d == D::Pa && m == M::GraphSageSupervised {
        c.extend(["fig2", "fig9"]);
    }
    c.extend(["fig10", "fig11"]);
    if p == PlatformId::ServerC {
        if m == M::GraphSageSupervised && (d == D::Pa || d == D::Cf) {
            c.push("fig12");
        }
        if m == M::Gcn && (d == D::Cf || d == D::Mag) {
            c.push("fig13");
        }
        if m == M::GraphSageSupervised && (d == D::Pa || d == D::Cf) {
            c.push("fig14");
        }
        // fig16 measures PA at every scale and adds CF/MAG at
        // gnn_scale <= 1024 (see SCENARIOS.md note).
        c.push("fig16");
        if d == D::Pa && m == M::GraphSageSupervised {
            c.push("hotness");
        }
    }
    c
}

/// CLI targets consuming a DLR scenario.
fn dlr_consumers(d: DlrDatasetId, p: PlatformId) -> Vec<&'static str> {
    use DlrDatasetId as D;
    let mut c: Vec<&'static str> = Vec::new();
    if (p == PlatformId::ServerA || p == PlatformId::ServerC) && (d == D::Cr || d == D::SynA) {
        c.push("fig4");
    }
    c.extend(["fig10", "fig11"]);
    if p == PlatformId::ServerC && (d == D::Cr || d == D::SynA) {
        c.push("fig13");
    }
    if p == PlatformId::ServerA || (p == PlatformId::ServerB && (d == D::SynA || d == D::SynB)) {
        c.push("fig16");
    }
    if p == PlatformId::ServerC && d == D::Cr {
        c.push("fig17");
    }
    c
}

/// Builds the builtin catalog: every workload × platform point the
/// harness measures, in catalog order (GNN on the three servers, the
/// Table 1 single-GPU GNN, DLR on the three servers, serving).
fn builtin_defs() -> Vec<ScenarioDef> {
    let mut defs = Vec::new();
    let gnn_datasets = [GnnDatasetId::Pa, GnnDatasetId::Cf, GnnDatasetId::Mag];
    for p in PlatformId::SERVERS {
        for d in gnn_datasets {
            for m in GnnModel::ALL {
                let workload = WorkloadSpec::Gnn {
                    dataset: d,
                    model: m,
                };
                defs.push(ScenarioDef {
                    name: workload.scenario_name(p),
                    workload,
                    platform: p,
                    policy: PolicyId::UGache,
                    seed: SEED,
                    consumers: gnn_consumers(d, m, p),
                });
            }
        }
    }
    let table1 = WorkloadSpec::Gnn {
        dataset: GnnDatasetId::Mag,
        model: GnnModel::GraphSageUnsupervised,
    };
    defs.push(ScenarioDef {
        name: table1.scenario_name(PlatformId::SingleA100),
        workload: table1,
        platform: PlatformId::SingleA100,
        policy: PolicyId::GnnLab,
        seed: SEED,
        consumers: vec!["table1"],
    });
    let dlr_datasets = [DlrDatasetId::Cr, DlrDatasetId::SynA, DlrDatasetId::SynB];
    for p in PlatformId::SERVERS {
        for d in dlr_datasets {
            let workload = WorkloadSpec::Dlr { dataset: d };
            defs.push(ScenarioDef {
                name: workload.scenario_name(p),
                workload,
                platform: p,
                policy: PolicyId::UGache,
                seed: SEED,
                consumers: dlr_consumers(d, p),
            });
        }
    }
    defs.push(ScenarioDef {
        name: WorkloadSpec::ServeZipf.scenario_name(PlatformId::ServerA),
        workload: WorkloadSpec::ServeZipf,
        platform: PlatformId::ServerA,
        policy: PolicyId::UGache,
        seed: SEED,
        consumers: vec!["serve"],
    });
    defs
}

/// The builtin scenario registry (built once, collision-checked).
///
/// # Panics
///
/// Panics if the builtin catalog contains a duplicate name — a bug
/// caught at first use (and by the crate's tests).
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY
        .get_or_init(|| Registry::new(builtin_defs()).expect("builtin catalog is collision-free"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_is_collision_free_and_complete() {
        let r = registry();
        // 27 GNN on servers + 1 Table 1 GNN + 9 DLR + 1 serve.
        assert_eq!(r.defs().len(), 38);
        for d in r.defs() {
            assert_eq!(d.name, d.workload.scenario_name(d.platform));
            assert!(!d.consumers.is_empty(), "{} has no consumers", d.name);
        }
    }

    #[test]
    fn lookups_resolve_expected_names() {
        let r = registry();
        assert!(r.get("gnn/pa/sage_sup@server_c").is_some());
        assert!(r.get("dlr/syn_a@server_b").is_some());
        assert!(r.get("gnn/mag/sage_unsup@a100_80").is_some());
        assert_eq!(r.serve_def().unwrap().name, "serve/zipf@server_a");
        assert!(r.get("gnn/pa/sage_sup@server_z").is_none());
        let d = r
            .gnn_def(
                GnnDatasetId::Pa,
                GnnModel::GraphSageSupervised,
                PlatformId::ServerC,
            )
            .unwrap();
        assert!(d.consumers.contains(&"fig2"));
        assert!(d.consumers.contains(&"hotness"));
    }

    #[test]
    fn collisions_are_rejected() {
        let mut defs = builtin_defs();
        let dup = defs[0].clone();
        defs.push(dup);
        let err = Registry::new(defs).unwrap_err();
        assert!(err.contains("duplicate scenario name"), "{err}");
    }

    #[test]
    fn platform_and_policy_names_round_trip() {
        for p in PlatformId::ALL {
            assert_eq!(PlatformId::parse(p.name()), Some(p));
            assert_eq!(p.resolve().num_gpus(), p.num_gpus());
        }
        for p in PolicyId::ALL {
            assert_eq!(PolicyId::parse(p.name()), Some(p));
        }
        assert_eq!(PlatformId::parse("server_z"), None);
        assert_eq!(PolicyId::parse("lru"), None);
    }

    #[test]
    fn def_builders_match_knob_builders() {
        let knobs = Scenario {
            gnn_scale: 16_384,
            dlr_scale: 65_536,
            gnn_batch: 64,
            dlr_batch: 64,
            iters: 1,
            serve_users: 10_000,
            serve_requests: 8,
        };
        let r = registry();
        let def = r.dlr_def(DlrDatasetId::SynA, PlatformId::ServerA).unwrap();
        let (mut a, ha) = def.dlr(&knobs);
        let (mut b, hb) = knobs.dlr(DlrDatasetId::SynA, &Platform::server_a());
        assert_eq!(a.next_batch(), b.next_batch());
        assert_eq!(ha.ranking(), hb.ranking());
    }

    #[test]
    #[should_panic(expected = "is not a GNN workload")]
    fn gnn_builder_rejects_dlr_defs() {
        let r = registry();
        let def = r.dlr_def(DlrDatasetId::Cr, PlatformId::ServerA).unwrap();
        let _ = def.gnn(&Scenario::quick());
    }
}
