//! The scenario registry: every workload the harness measures, named.
//!
//! A *scenario* is one composable point in (workload × platform ×
//! policy × schedule) space. The registry ([`registry`]) names each one
//! behind a single lookup API so figure modules, the serving sweep, and
//! the `record`/`replay` trace tooling all resolve the *same*
//! construction instead of repeating inline literals. Names follow the
//! scheme documented in EXPERIMENTS.md ("The registry and its naming
//! scheme"):
//!
//! ```text
//! <family>/<dataset>[/<model>]@<platform>
//! ```
//!
//! e.g. `gnn/pa/sage_sup@server_c`, `dlr/cr@server_a`,
//! `serve/zipf@server_a`. The committed catalog `SCENARIOS.md` is
//! generated from the builtin [`Registry`] and CI fails when they drift.
//!
//! Scale knobs deliberately stay outside the registry in [`Scenario`]:
//! a registry entry names a workload-family point; the knobs size the
//! generated instance (`--full`, `--gnn-scale`, …).

#![deny(missing_docs)]

mod knobs;
mod registry;

pub use knobs::{Scenario, SEED};
pub use registry::{registry, PlatformId, PolicyId, Registry, ScenarioDef, WorkloadSpec};
