//! Scale and batch knobs for a harness run (the former
//! `ugache_bench::scenario::Scenario`, verbatim — field order is part
//! of the artifact byte format).

use cache_policy::Hotness;
use emb_workload::dlr::DlrHotness;
use emb_workload::{
    dlr_preset, gnn_preset, DlrDatasetId, DlrWorkload, GnnDatasetId, GnnModel, GnnWorkload,
};
use gpu_platform::Platform;
use serde::Serialize;

/// Workspace-wide RNG seed for the harness.
pub const SEED: u64 = 0x5EED;

/// Scale and batch knobs for a harness run.
///
/// `quick()` keeps every figure under a few seconds of wall time on a
/// laptop core; `full()` uses larger domains for smoother curves.
///
/// Field order is load-bearing: the struct serializes into every
/// artifact's `scenario` block and the `--trace` header, which must
/// stay byte-identical across refactors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Scenario {
    /// Divisor applied to paper-scale GNN vertex counts.
    pub gnn_scale: usize,
    /// Divisor applied to paper-scale DLR table sizes.
    pub dlr_scale: usize,
    /// GNN seeds per GPU per iteration.
    pub gnn_batch: usize,
    /// DLR requests per GPU per iteration.
    pub dlr_batch: usize,
    /// Iterations measured per data point.
    pub iters: usize,
    /// Simulated client population of the serving sweep.
    pub serve_users: usize,
    /// Requests served per offered-load level of the serving sweep.
    pub serve_requests: usize,
}

impl Scenario {
    /// Fast settings for CI and the default `repro` run.
    pub fn quick() -> Self {
        Scenario {
            gnn_scale: 4096,
            dlr_scale: 8192,
            gnn_batch: 512,
            dlr_batch: 512,
            iters: 2,
            serve_users: 200_000,
            serve_requests: 160,
        }
    }

    /// Larger settings for smoother series.
    pub fn full() -> Self {
        Scenario {
            gnn_scale: 1024,
            dlr_scale: 2048,
            gnn_batch: 1024,
            dlr_batch: 1024,
            iters: 3,
            serve_users: 2_000_000,
            serve_requests: 512,
        }
    }

    /// The three testbeds of §8.1, resolved through the registry's
    /// platform table ([`crate::PlatformId`]).
    pub fn servers() -> [Platform; 3] {
        [
            crate::PlatformId::ServerA.resolve(),
            crate::PlatformId::ServerB.resolve(),
            crate::PlatformId::ServerC.resolve(),
        ]
    }

    /// Builds a GNN workload plus profiled hotness.
    pub fn gnn(
        &self,
        id: GnnDatasetId,
        model: GnnModel,
        platform: &Platform,
    ) -> (GnnWorkload, Hotness) {
        let d = gnn_preset(id, self.gnn_scale, SEED);
        let mut w = GnnWorkload::new(d, model, self.gnn_batch, platform.num_gpus(), SEED);
        let h = w.profile_hotness(2);
        (w, h)
    }

    /// Builds a DLR workload plus analytic hotness.
    pub fn dlr(&self, id: DlrDatasetId, platform: &Platform) -> (DlrWorkload, Hotness) {
        let d = dlr_preset(id, self.dlr_scale);
        let mut w = DlrWorkload::new(d, self.dlr_batch, platform.num_gpus(), SEED);
        let h = w.hotness(DlrHotness::Analytic);
        (w, h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scenario_builds_workloads() {
        let s = Scenario::quick();
        let plat = Platform::server_a();
        let (mut w, h) = s.gnn(GnnDatasetId::Pa, GnnModel::GraphSageSupervised, &plat);
        assert!(h.total() > 0.0);
        assert_eq!(w.next_batch().len(), 4);
        let (mut d, hd) = s.dlr(DlrDatasetId::SynA, &plat);
        assert!(hd.total() > 0.0);
        assert_eq!(d.next_batch().len(), 4);
    }

    #[test]
    fn servers_match_direct_construction() {
        let [a, b, c] = Scenario::servers();
        assert_eq!(a.num_gpus(), Platform::server_a().num_gpus());
        assert_eq!(b.num_gpus(), Platform::server_b().num_gpus());
        assert_eq!(c.num_gpus(), Platform::server_c().num_gpus());
    }
}
