//! Offline stand-in for `criterion`.
//!
//! The build sandbox and CI cannot reach a crates registry, so this
//! in-repo crate provides the `criterion 0.5` surface the workspace's
//! benches use: [`Criterion::default`]`().sample_size(n)`,
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`], the
//! named form of [`criterion_group!`], and [`criterion_main!`].
//!
//! Measurement is deliberately simple — per bench it times
//! `sample_size` batches with [`std::time::Instant`] and reports the
//! fastest batch's per-iteration time (minimum-of-samples is the usual
//! low-noise estimator). There is no warm-up, outlier analysis, or HTML
//! report. Wall-clock reads live only here, in the bench harness; the
//! libraries under test stay deterministic.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Bench harness entry point, mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per bench.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f` and prints one summary line.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into(), self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benches.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named group of benches, mirroring `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Times `f` under `group_name/id` and prints one summary line.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_bench(&full, self.criterion.sample_size, &mut f);
        self
    }

    /// Ends the group (upstream flushes reports here; nothing to do).
    pub fn finish(self) {}
}

/// Timer handle passed to each bench closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly and records the elapsed time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, samples: usize, f: &mut F) {
    let mut best: Option<Duration> = None;
    for _ in 0..samples {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed / u32::try_from(b.iters.max(1)).unwrap_or(u32::MAX);
        best = Some(match best {
            Some(cur) if cur <= per_iter => cur,
            _ => per_iter,
        });
    }
    let best = best.unwrap_or(Duration::ZERO);
    println!(
        "{id:<40} time: [{} per iter, best of {samples}]",
        fmt_duration(best)
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Declares a bench group, mirroring `criterion::criterion_group!`.
///
/// Supports the named form (`name = ...; config = ...; targets = ...`)
/// and the positional form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("sum_1k", |b| b.iter(|| (0..1_000u64).sum::<u64>()));
    }

    criterion_group! {
        name = smoke;
        config = Criterion::default().sample_size(3);
        targets = sample_bench,
    }

    #[test]
    fn group_runs() {
        smoke();
    }

    #[test]
    fn groups_and_builder_chain() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("g");
        g.bench_function(format!("case_{}", 1), |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(10)), "10 ns");
        assert!(fmt_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
