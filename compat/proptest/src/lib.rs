//! Offline stand-in for `proptest`.
//!
//! The build sandbox and CI cannot reach a crates registry, so this
//! in-repo crate provides the `proptest` subset the workspace's property
//! tests use: the [`Strategy`] trait with `prop_map`, range strategies
//! for the numeric types, [`prop::collection::vec`], the [`proptest!`]
//! macro (with `#![proptest_config(..)]` support), and
//! `prop_assert!`/`prop_assert_eq!`.
//!
//! Unlike upstream there is no shrinking and no persisted failure seeds:
//! every test derives its RNG seed from a stable FNV-1a hash of the test
//! path, so runs are fully deterministic — a failure reproduces by just
//! re-running the test, which is the contract this workspace wants
//! (explicit seeds everywhere, no ambient entropy).

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng};
use std::ops::Range;

/// Runtime configuration accepted by `#![proptest_config(..)]`.
///
/// Only `cases` is honored; upstream's shrinking- and persistence-related
/// knobs have no meaning here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
    /// Accepted for upstream compatibility; shrinking is not implemented,
    /// so the value is never consulted.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value from the given generator.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

impl<T: SampleUniform + Copy> Strategy for Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Size specification for [`vec()`]: a fixed length or a half-open
    /// range of lengths.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Generates `Vec`s whose elements come from `element` and whose
    /// length is drawn from `size` (a fixed `usize` or `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Namespace mirror so `prop::collection::vec(..)` resolves as upstream.
pub mod prop {
    pub use crate::collection;
}

/// Stable FNV-1a hash of the test path, used as the RNG seed so every
/// property test is deterministic without any persisted state.
#[must_use]
pub fn seed_for(test_path: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Builds the deterministic generator for one property test.
#[must_use]
pub fn rng_for(test_path: &str) -> StdRng {
    StdRng::seed_from_u64(seed_for(test_path))
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{prop, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Declares property tests, mirroring upstream `proptest!`.
///
/// Supports the form used in this workspace: an optional leading
/// `#![proptest_config(expr)]`, then any number of
/// `fn name(arg in strategy, ...) { body }` items (doc comments and
/// other attributes on each fn are preserved). Each expands to a
/// `#[test]` that samples the strategies `config.cases` times from a
/// deterministic per-test generator and runs the body; a panicking case
/// reports its index before propagating.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $($(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng =
                    $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| $body),
                    );
                    if let Err(panic) = outcome {
                        eprintln!(
                            "proptest: {} failed at case {}/{} (deterministic; rerun reproduces)",
                            stringify!($name),
                            case + 1,
                            config.cases,
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn seeds_are_stable_and_distinct() {
        assert_eq!(seed_for("a::b"), seed_for("a::b"));
        assert_ne!(seed_for("a::b"), seed_for("a::c"));
    }

    #[test]
    fn range_strategy_respects_bounds() {
        let mut rng = rng_for("range_strategy_respects_bounds");
        for _ in 0..1_000 {
            let x = (3usize..9).sample(&mut rng);
            assert!((3..9).contains(&x));
            let y = (-1.0f64..1.0).sample(&mut rng);
            assert!((-1.0..1.0).contains(&y));
        }
    }

    #[test]
    fn vec_strategy_lengths() {
        let mut rng = rng_for("vec_strategy_lengths");
        for _ in 0..200 {
            let fixed = collection::vec(0.0f64..1.0, 6).sample(&mut rng);
            assert_eq!(fixed.len(), 6);
            let ranged = collection::vec(0u64..10, 2..5).sample(&mut rng);
            assert!((2..5).contains(&ranged.len()));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = rng_for("prop_map_applies");
        let doubled = (1usize..10).prop_map(|x| x * 2).sample(&mut rng);
        assert_eq!(doubled % 2, 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

        /// The macro itself: args bind, config caps cases, asserts work.
        fn macro_smoke(x in 0u64..100, v in prop::collection::vec(0.0f64..1.0, 1..4)) {
            prop_assert!(x < 100);
            prop_assert_eq!(v.is_empty(), false);
        }
    }
}
