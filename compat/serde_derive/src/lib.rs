//! Offline stand-in for `serde_derive`.
//!
//! Provides `#[derive(Serialize)]` for **named-field structs** — the
//! only shape the workspace derives on. The real `serde_derive` pulls in
//! `syn`/`quote`, which the offline sandbox cannot fetch, so this macro
//! parses the raw [`proc_macro::TokenStream`] directly: it skips
//! attributes and visibility, reads the struct name, collects the field
//! names from the brace group (splitting on top-level commas, tracking
//! angle-bracket depth so `HashMap<K, V>` fields don't split), and emits
//! a `serde::Serialize` impl via `serialize_struct`/`serialize_field`.
//!
//! Enums, tuple structs, unit structs, and generic structs are rejected
//! with a `compile_error!` rather than silently mis-serialized; the one
//! enum the workspace serializes (`ugache_bench::artifact::TargetData`)
//! has a manual impl instead.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for a named-field struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match expand(input) {
        Ok(code) => code.parse().expect("generated impl must parse"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

fn expand(input: TokenStream) -> Result<String, String> {
    let mut tokens = input.into_iter().peekable();

    // Skip outer attributes (`#` followed by a bracket group) and
    // visibility (`pub`, optionally followed by a paren group as in
    // `pub(crate)`).
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                match tokens.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                    _ => return Err("malformed attribute".into()),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            _ => break,
        }
    }

    match tokens.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {}
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
            return Err("this offline serde_derive only supports structs; \
                 write a manual Serialize impl for enums"
                .into());
        }
        _ => return Err("expected `struct`".into()),
    }

    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected struct name".into()),
    };

    let body = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            return Err("this offline serde_derive does not support generic structs".into());
        }
        _ => {
            return Err("this offline serde_derive only supports named-field structs".into());
        }
    };

    let fields = field_names(body)?;

    let mut code = String::new();
    code.push_str(&format!(
        "impl serde::Serialize for {name} {{\n\
         fn serialize<__S: serde::Serializer>(&self, serializer: __S) \
         -> std::result::Result<__S::Ok, __S::Error> {{\n\
         let mut state = serde::Serializer::serialize_struct(serializer, \
         {name:?}, {})?;\n",
        fields.len()
    ));
    for f in &fields {
        code.push_str(&format!(
            "serde::ser::SerializeStruct::serialize_field(&mut state, {f:?}, &self.{f})?;\n"
        ));
    }
    code.push_str("serde::ser::SerializeStruct::end(state)\n}\n}\n");
    Ok(code)
}

/// Extracts field names from the brace-group body of a named-field
/// struct: per field, skips attributes and visibility, then takes the
/// ident immediately before the `:`. Fields are separated by commas at
/// angle-bracket depth zero (commas inside parenthesized tuple types are
/// already nested in their own group; commas inside `<...>` need the
/// depth counter).
fn field_names(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut angle_depth = 0i32;
    let mut at_field_start = true;
    let mut expect_name = false;
    let mut pending: Option<String> = None;

    let mut tokens = body.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                at_field_start = true;
                expect_name = false;
                continue;
            }
            TokenTree::Punct(p) if p.as_char() == '#' && at_field_start => {
                match tokens.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                    _ => return Err("malformed field attribute".into()),
                }
                continue;
            }
            TokenTree::Ident(id) if at_field_start => {
                let s = id.to_string();
                if s == "pub" {
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                } else {
                    pending = Some(s);
                    at_field_start = false;
                    expect_name = true;
                }
                continue;
            }
            TokenTree::Punct(p) if p.as_char() == ':' && expect_name => {
                match pending.take() {
                    Some(name) => fields.push(name),
                    None => return Err("field without a name".into()),
                }
                expect_name = false;
                continue;
            }
            _ => {}
        }
        at_field_start = false;
    }

    if fields.is_empty() {
        return Err("this offline serde_derive requires at least one named field".into());
    }
    Ok(fields)
}
