//! Offline stand-in for `serde`.
//!
//! The build sandbox and CI cannot reach a crates registry, so this
//! in-repo crate provides the serialization half of serde's data model —
//! the [`Serialize`]/[`Serializer`] traits, the compound-serializer
//! traits in [`ser`], and impls for the std types the workspace
//! serializes — plus a `#[derive(Serialize)]` for named-field structs
//! (re-exported from the in-repo `serde_derive`).
//!
//! Deserialization is intentionally absent: repro artifacts are read
//! back through `ugache_bench::json::parse`, which produces a dynamic
//! value tree and needs no `Deserialize` machinery.

pub mod ser;

pub use ser::{Serialize, Serializer};
pub use serde_derive::Serialize;
