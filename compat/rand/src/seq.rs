//! Sequence helpers, mirroring `rand::seq`.

use crate::Rng;

/// Iterator over elements picked by [`SliceRandom::choose_multiple`].
#[derive(Debug)]
pub struct SliceChooseIter<'a, T> {
    items: std::vec::IntoIter<&'a T>,
}

impl<'a, T> Iterator for SliceChooseIter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        self.items.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.items.size_hint()
    }
}

impl<T> ExactSizeIterator for SliceChooseIter<'_, T> {}

/// Random slice operations, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Picks one element uniformly, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Picks `amount` distinct elements uniformly (fewer if the slice is
    /// shorter), in random order.
    fn choose_multiple<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> SliceChooseIter<'_, Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = crate::SampleUniform::sample_half_open(0usize, i + 1, rng);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            let i = crate::SampleUniform::sample_half_open(0usize, self.len(), rng);
            Some(&self[i])
        }
    }

    fn choose_multiple<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> SliceChooseIter<'_, T> {
        let amount = amount.min(self.len());
        // Partial Fisher–Yates over an index vector: the first `amount`
        // slots end up holding a uniform sample without replacement.
        let mut idx: Vec<usize> = (0..self.len()).collect();
        for i in 0..amount {
            let j = crate::SampleUniform::sample_half_open(i, idx.len(), rng);
            idx.swap(i, j);
        }
        let picked: Vec<&T> = idx[..amount].iter().map(|&i| &self[i]).collect();
        SliceChooseIter {
            items: picked.into_iter(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn choose_multiple_is_distinct_and_capped() {
        let mut rng = StdRng::seed_from_u64(2);
        let v: Vec<u32> = (0..10).collect();
        let picked: Vec<u32> = v.choose_multiple(&mut rng, 4).copied().collect();
        assert_eq!(picked.len(), 4);
        let mut p = picked.clone();
        p.sort_unstable();
        p.dedup();
        assert_eq!(p.len(), 4);
        let over: Vec<u32> = v.choose_multiple(&mut rng, 99).copied().collect();
        assert_eq!(over.len(), 10);
    }

    #[test]
    fn choose_on_empty_is_none() {
        let mut rng = StdRng::seed_from_u64(3);
        let v: Vec<u32> = vec![];
        assert!(v.choose(&mut rng).is_none());
    }
}
