//! Offline stand-in for the `rand` crate.
//!
//! The build sandbox and CI cannot reach a crates registry, so this
//! in-repo crate provides the exact `rand 0.8` API subset the workspace
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], the [`Rng`]
//! extension methods (`gen`, `gen_range`, `gen_bool`) and
//! [`seq::SliceRandom`] (`shuffle`, `choose`, `choose_multiple`).
//!
//! [`rngs::StdRng`] is xoshiro256++ seeded through SplitMix64 — not the
//! upstream ChaCha12, so absolute streams differ from real `rand`, but
//! every consumer in this workspace only relies on *seeded determinism*
//! (same seed ⇒ same stream), which holds. No ambient entropy source is
//! provided at all: every generator must be constructed from an explicit
//! seed, which is load-bearing for the repro harness.

pub mod rngs;
pub mod seq;

/// Low-level uniform bit source.
pub trait RngCore {
    /// Returns the next 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniform bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// Construction of a generator from an explicit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a bare `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce uniformly.
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u16 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}

impl Standard for u8 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}

impl Standard for usize {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types with uniform range sampling.
pub trait SampleUniform: Sized {
    /// Draws uniformly from `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Draws uniformly from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

/// Draws uniformly from `[0, span)` without modulo bias (widening
/// multiply with rejection).
fn uniform_u64<R: RngCore + ?Sized>(span: u64, rng: &mut R) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) <= zone {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {
        $(impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                lo.wrapping_add(uniform_u64(span, rng) as $t)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(span as u64, rng) as $t)
            }
        })*
    };
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {
        $(impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let unit = <$t as Standard>::standard(rng);
                let v = lo + (hi - lo) * unit;
                // Guard the open upper bound against rounding.
                if v >= hi { lo } else { v }
            }

            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as Standard>::standard(rng);
                lo + (hi - lo) * unit
            }
        })*
    };
}

impl_sample_uniform_float!(f32, f64);

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(lo, hi, rng)
    }
}

/// User-facing generator methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// Draws uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        f64::standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: usize = rng.gen_range(5..17);
            assert!((5..17).contains(&x));
            let y: f64 = rng.gen_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&y));
            let z: usize = rng.gen_range(0..=3);
            assert!(z <= 3);
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        let _: usize = rng.gen_range(3..3);
    }

    #[test]
    fn unsized_rng_bound_compiles() {
        fn take<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0..10u64)
        }
        let mut rng = StdRng::seed_from_u64(8);
        assert!(take(&mut rng) < 10);
    }
}
