//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard seeded generator: xoshiro256++.
///
/// Unlike upstream `rand`'s ChaCha12-backed `StdRng`, this one is a
/// small, fast xoshiro256++ instance; it provides the same contract the
/// workspace relies on — identical seeds yield identical streams — with
/// no platform or entropy dependence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

/// SplitMix64 step, used to expand the `u64` seed into state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_is_never_all_zero() {
        // seed_from_u64(0) must still produce a working stream.
        let mut rng = StdRng::seed_from_u64(0);
        let xs: Vec<u64> = (0..16).map(|_| rng.next_u64()).collect();
        assert!(xs.iter().any(|&x| x != 0));
        assert_ne!(xs[0], xs[1]);
    }

    #[test]
    fn clone_continues_identically() {
        let mut a = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            a.next_u64();
        }
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
