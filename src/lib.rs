//! Umbrella crate for the UGache reproduction workspace.
//!
//! This crate hosts the runnable examples (`examples/`) and the cross-crate
//! integration tests (`tests/`). All functionality lives in the member
//! crates; see `DESIGN.md` for the system inventory.

pub use cache_policy as policy;
pub use emb_cache as cache;
pub use emb_graph as graph;
pub use emb_util as util;
pub use emb_workload as workload;
pub use extractor as extract;
pub use gpu_memsim as memsim;
pub use gpu_platform as platform;
pub use milp;
pub use ugache;
