//! Cross-crate integration tests: the full pipeline from workload
//! generation through policy solving, cache filling, functional gathers
//! and timed extraction.

use cache_policy::Hotness;
use emb_cache::HostTable;
use emb_util::zipf::powerlaw_hotness;
use emb_workload::dlr::DlrHotness;
use emb_workload::{
    dlr_preset, gnn_preset, DlrDatasetId, DlrWorkload, GnnDatasetId, GnnModel, GnnWorkload,
};
use gpu_platform::Platform;
use ugache::baselines::{build_system, SystemKind};
use ugache::{UGache, UGacheConfig};

const DIM: usize = 16;

fn small_ugache(platform: Platform, n: usize, cap: usize) -> UGache {
    let host = HostTable::dense(n, DIM);
    let hotness = Hotness::new(powerlaw_hotness(n, 1.2));
    let g = platform.num_gpus();
    let mut cfg = UGacheConfig::new(DIM * 4, 1_000.0);
    cfg.solver.blocks.max_blocks = 48;
    // Tests want exact hotness tracking, not sampled.
    cfg.sample_stride = 1;
    UGache::build(platform, host, &hotness, vec![cap; g], cfg).expect("build")
}

#[test]
fn gather_is_correct_on_every_platform_and_gpu() {
    let n = 3_000;
    for platform in [
        Platform::server_a(),
        Platform::server_b(),
        Platform::server_c(),
    ] {
        let g = platform.num_gpus();
        let mut u = small_ugache(platform, n, 300);
        let truth = HostTable::dense(n, DIM);
        let keys: Vec<u32> = (0..n as u32).step_by(37).collect();
        let mut out = vec![0.0f32; keys.len() * DIM];
        for gpu in 0..g {
            let stats = u.gather(gpu, &keys, &mut out);
            assert_eq!(stats.total(), keys.len() as u64);
            for (k, &key) in keys.iter().enumerate() {
                assert_eq!(
                    &out[k * DIM..(k + 1) * DIM],
                    truth.read(key).as_slice(),
                    "gpu {gpu} key {key}"
                );
            }
        }
    }
}

#[test]
fn gnn_pipeline_runs_end_to_end() {
    let plat = Platform::server_a();
    let dataset = gnn_preset(GnnDatasetId::Pa, 8192, 3);
    let n = dataset.num_entries();
    let mut w = GnnWorkload::new(dataset, GnnModel::GraphSageSupervised, 128, 4, 3);
    let hotness = w.profile_hotness(2);
    assert_eq!(hotness.len(), n);

    let sys = build_system(SystemKind::UGache, &plat, &hotness, n / 20, 512, 2_000.0, 1)
        .expect("ugache builds");
    sys.placement.validate().expect("valid placement");
    let keys = w.next_batch();
    let out = sys.extract(&keys);
    assert!(out.makespan.as_nanos() > 0);
    // Byte accounting: extraction must move exactly the batch volume.
    for (gpu, ks) in keys.iter().enumerate() {
        let moved: f64 = out.per_gpu[gpu].per_src.iter().map(|u| u.bytes).sum();
        assert!(
            (moved - ks.len() as f64 * 512.0).abs() < 1.0,
            "gpu {gpu}: moved {moved} for {} keys",
            ks.len()
        );
    }
}

#[test]
fn dlr_pipeline_runs_end_to_end_on_all_servers() {
    for plat in [
        Platform::server_a(),
        Platform::server_b(),
        Platform::server_c(),
    ] {
        let dataset = dlr_preset(DlrDatasetId::SynB, 65_536);
        let mut w = DlrWorkload::new(dataset.clone(), 128, plat.num_gpus(), 5);
        let hotness = w.hotness(DlrHotness::Analytic);
        for kind in [SystemKind::UGache, SystemKind::Hps, SystemKind::Sok] {
            let sys = build_system(
                kind,
                &plat,
                &hotness,
                dataset.num_entries() / 16,
                dataset.entry_bytes,
                500.0,
                2,
            )
            .unwrap_or_else(|e| panic!("{} on {}: {e}", kind.name(), plat.name));
            sys.placement.validate().unwrap();
            let keys = w.next_batch();
            assert!(sys.extract(&keys).makespan.as_nanos() > 0);
        }
    }
}

#[test]
fn ugache_is_never_worse_than_both_baselines_together() {
    // The paper's headline: UGache spans the replication/partition
    // trade-off, so it should match or beat min(replication, partition)
    // across skews and capacities (small tolerance for realization).
    let plat = Platform::server_c();
    let n = 30_000;
    for alpha in [1.05, 1.2, 1.4] {
        for cap in [n / 100, n / 20, n / 4] {
            let hotness = Hotness::new(powerlaw_hotness(n, alpha));
            let zipf = emb_util::ZipfSampler::new(n as u64, alpha);
            let mut rng = emb_util::seed_rng(9);
            let keys: Vec<Vec<u32>> = (0..8)
                .map(|_| {
                    let mut v: Vec<u32> =
                        (0..10_000).map(|_| zipf.sample(&mut rng) as u32).collect();
                    v.sort_unstable();
                    v.dedup();
                    v
                })
                .collect();
            let accesses = keys[0].len() as f64;
            let t = |kind: SystemKind| {
                build_system(kind, &plat, &hotness, cap, 512, accesses, 3)
                    .unwrap()
                    .extract(&keys)
                    .makespan
                    .as_secs_f64()
            };
            let u = t(SystemKind::UGache);
            let best_baseline = t(SystemKind::RepU).min(t(SystemKind::PartU));
            // 15% slack: block-granularity realization plus single-batch
            // measurement noise.
            assert!(
                u <= best_baseline * 1.15,
                "alpha {alpha} cap {cap}: UGache {u} vs best baseline {best_baseline}"
            );
        }
    }
}

#[test]
fn refresh_cycle_preserves_correctness() {
    let n = 2_000;
    let mut u = small_ugache(Platform::server_a(), n, 200);
    let truth = HostTable::dense(n, DIM);

    // Shift the workload to the cold end, then force a refresh.
    let keys: Vec<Vec<u32>> = (0..4)
        .map(|_| ((n - 500) as u32..n as u32).collect())
        .collect();
    for _ in 0..5 {
        u.process_iteration(&keys);
    }
    assert!(u.consider_refresh(true).unwrap());
    // Gathers stay correct while the refresh is migrating content.
    let probe: Vec<u32> = (0..n as u32).step_by(101).collect();
    let mut out = vec![0.0f32; probe.len() * DIM];
    while u.refresh_active() {
        let stats = u.gather(1, &probe, &mut out);
        assert_eq!(stats.total(), probe.len() as u64);
        for (k, &key) in probe.iter().enumerate() {
            assert_eq!(&out[k * DIM..(k + 1) * DIM], truth.read(key).as_slice());
        }
        u.advance_clock(1.0);
    }
    // After refresh, the new hot range should be better cached.
    let (l, r, _h) = u.placement().access_split(
        0,
        &Hotness::new({
            let mut w = vec![0.0; n];
            for e in (n - 500)..n {
                w[e] = 1.0;
            }
            w
        }),
    );
    assert!(l + r > 0.5, "hot range cached only {:.2}", l + r);
}

#[test]
fn deterministic_end_to_end() {
    let run = || {
        let plat = Platform::server_b();
        let mut u = small_ugache(plat, 2_000, 150);
        let keys: Vec<Vec<u32>> = (0..8)
            .map(|g| (g as u32 * 10..g as u32 * 10 + 700).collect())
            .collect();
        u.process_iteration(&keys).extract.makespan
    };
    assert_eq!(run(), run());
}
