//! Property-based tests over the core data structures and invariants.

use cache_policy::{baselines, build_blocks, BlockConfig, Hotness, SolverConfig, UGacheSolver};
use gpu_memsim::{simulate, DispatchMode, GpuWork, SimConfig, SourceDemand};
use gpu_platform::{DedicationConfig, Location, Platform};
use milp::{ConstraintSense, LinExpr, Model};
use proptest::prelude::*;
use rand::Rng;

fn hotness_strategy(max_n: usize) -> impl Strategy<Value = Hotness> {
    prop::collection::vec(0.0f64..10.0, 2..max_n).prop_map(Hotness::new)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Blocks always partition the entry set exactly, regardless of the
    /// hotness distribution or configuration.
    #[test]
    fn blocks_partition_entries(
        h in hotness_strategy(400),
        coarse in 0.001f64..0.2,
        splits in 1usize..9,
        max_blocks in 4usize..64,
    ) {
        let cfg = BlockConfig { coarse_cap: coarse, min_splits: splits, max_blocks };
        let blocks = build_blocks(&h, &cfg);
        let mut all: Vec<u32> = blocks.iter().flat_map(|b| b.entries.clone()).collect();
        all.sort_unstable();
        prop_assert_eq!(all.len(), h.len());
        all.dedup();
        prop_assert_eq!(all.len(), h.len());
        prop_assert!(blocks.len() <= max_blocks.max(1));
    }

    /// The solver's placements always validate and respect capacity, for
    /// arbitrary hotness and capacities, on all three platforms.
    #[test]
    fn solver_placements_are_valid(
        h in hotness_strategy(300),
        cap_frac in 0.0f64..1.0,
        plat_idx in 0usize..3,
    ) {
        let plat = [Platform::server_a(), Platform::server_b(), Platform::server_c()]
            [plat_idx].clone();
        let g = plat.num_gpus();
        let cap = (h.len() as f64 * cap_frac) as usize;
        let solver = UGacheSolver::new(plat, DedicationConfig::default());
        let cfg = SolverConfig {
            blocks: BlockConfig { max_blocks: 24, min_splits: g, coarse_cap: 0.05 },
            entry_bytes: 128,
            accesses_per_iter: 50.0,
            dedup_adjust: true,
        };
        let sp = solver.solve(&h, &vec![cap; g], &cfg).unwrap();
        prop_assert!(sp.placement.validate().is_ok());
        for i in 0..g {
            prop_assert!(sp.placement.cached_count(i) <= cap);
        }
    }

    /// Replication dominates partition in local hit rate; partition
    /// dominates replication in global hit rate (strictly, once capacity
    /// is meaningful and skew is non-degenerate).
    #[test]
    fn rep_vs_part_hit_rate_duality(alpha in 0.8f64..1.6) {
        let n = 2_000usize;
        let h = Hotness::new(emb_util::zipf::powerlaw_hotness(n, alpha));
        let plat = Platform::server_c();
        let cap = n / 20;
        let rep = baselines::replication(&plat, &h, cap);
        let part = baselines::partition(&plat, &h, cap).unwrap();
        prop_assert!(rep.local_hit_rate(&h) >= part.local_hit_rate(&h));
        prop_assert!(part.global_hit_rate(&h) >= rep.global_hit_rate(&h));
    }

    /// The extraction simulator conserves bytes and never reports a
    /// makespan shorter than the best possible single-link time.
    #[test]
    fn simulator_conserves_bytes(
        local_mb in 0.0f64..8.0,
        remote_mb in 0.0f64..8.0,
        host_mb in 0.0f64..4.0,
        seed in 0u64..100,
    ) {
        let plat = Platform::server_a();
        let to_b = 1e6;
        let works = vec![GpuWork {
            gpu: 0,
            demands: vec![
                SourceDemand { src: Location::Gpu(0), bytes: local_mb * to_b },
                SourceDemand { src: Location::Gpu(1), bytes: remote_mb * to_b },
                SourceDemand { src: Location::Host, bytes: host_mb * to_b },
            ],
        }];
        let cfg = SimConfig { launch_overhead: emb_util::SimTime::ZERO, ..SimConfig::default() };
        let r = simulate(&plat, &cfg, &works, DispatchMode::RandomShared { seed });
        let moved: f64 = r.per_gpu[0].per_src.iter().map(|u| u.bytes).sum();
        let expected = (local_mb + remote_mb + host_mb) * to_b;
        prop_assert!((moved - expected).abs() < expected.max(1.0) * 1e-6 + 1.0);
        // Lower bound: every byte class at its own full line rate.
        let lb = (local_mb * to_b / 320e9)
            .max(remote_mb * to_b / 50e9)
            .max(host_mb * to_b / 12e9);
        prop_assert!(r.makespan.as_secs_f64() >= lb * 0.999);
    }

    /// Factored extraction never loses to naive dispatch by more than
    /// scheduling noise — *within the operating envelope the solver
    /// produces*, i.e. remote demand spread across the remote GPUs
    /// (balanced round-robin placement). With all remote bytes aimed at a
    /// single source the static 1/(G−1) core slicing of §5.3 deliberately
    /// under-subscribes, and naive dispatch can win; UGache's placements
    /// never create that shape.
    #[test]
    fn factored_at_least_matches_naive(
        local_mb in 0.5f64..6.0,
        remote_mb in 0.5f64..6.0,
        host_mb in 0.1f64..3.0,
        seed in 0u64..50,
    ) {
        let plat = Platform::server_c();
        let to_b = 1e6;
        let works: Vec<GpuWork> = (0..8)
            .map(|gpu| {
                let mut demands = vec![
                    SourceDemand { src: Location::Gpu(gpu), bytes: local_mb * to_b },
                    SourceDemand { src: Location::Host, bytes: host_mb * to_b },
                ];
                for j in 0..8usize {
                    if j != gpu {
                        demands.push(SourceDemand {
                            src: Location::Gpu(j),
                            bytes: remote_mb * to_b / 7.0,
                        });
                    }
                }
                GpuWork { gpu, demands }
            })
            .collect();
        let cfg = SimConfig { launch_overhead: emb_util::SimTime::ZERO, ..SimConfig::default() };
        let naive = simulate(&plat, &cfg, &works, DispatchMode::RandomShared { seed });
        let fem = simulate(
            &plat,
            &cfg,
            &works,
            DispatchMode::Factored { dedication: DedicationConfig::default() },
        );
        prop_assert!(
            fem.makespan.as_secs_f64() <= naive.makespan.as_secs_f64() * 1.10,
            "fem {} vs naive {}", fem.makespan, naive.makespan
        );
    }

    /// LP solutions are feasible and at least as good as every vertex of
    /// a small random box-constrained LP (brute-force corner check).
    #[test]
    fn simplex_beats_every_corner(
        c0 in -5.0f64..5.0,
        c1 in -5.0f64..5.0,
        c2 in -5.0f64..5.0,
        a in prop::collection::vec(0.1f64..2.0, 6),
        rhs0 in 1.0f64..4.0,
        rhs1 in 1.0f64..4.0,
    ) {
        let mut m = Model::new();
        let costs = [c0, c1, c2];
        let vars: Vec<_> = costs
            .iter()
            .enumerate()
            .map(|(i, &c)| m.add_var(&format!("x{i}"), 0.0, 1.0, c, false))
            .collect();
        m.add_constraint(
            LinExpr::from_terms(vars.iter().zip(&a[0..3]).map(|(&v, &k)| (v, k))),
            ConstraintSense::Le,
            rhs0,
        );
        m.add_constraint(
            LinExpr::from_terms(vars.iter().zip(&a[3..6]).map(|(&v, &k)| (v, k))),
            ConstraintSense::Le,
            rhs1,
        );
        let sol = milp::solve_lp(&m).unwrap();
        prop_assert!(m.is_feasible(&sol.x, 1e-6));
        // Check against all 8 binary corners that happen to be feasible.
        for mask in 0..8u32 {
            let x: Vec<f64> = (0..3).map(|i| ((mask >> i) & 1) as f64).collect();
            if m.is_feasible(&x, 1e-9) {
                let obj = m.objective_value(&x);
                prop_assert!(sol.objective <= obj + 1e-6, "corner {x:?} beats LP");
            }
        }
    }

    /// Zipf samples stay in range and rank-0 is sampled at least as often
    /// as a deep-tail rank.
    #[test]
    fn zipf_in_range_and_ordered(n in 10u64..5_000, alpha in 0.7f64..1.8, seed in 0u64..50) {
        let z = emb_util::ZipfSampler::new(n, alpha);
        let mut rng = emb_util::seed_rng(seed);
        let mut head = 0u64;
        let mut tail = 0u64;
        for _ in 0..4_000 {
            let k = z.sample(&mut rng);
            prop_assert!(k < n);
            if k == 0 {
                head += 1;
            }
            if k >= n - (n / 4).max(1) {
                tail += 1;
            }
        }
        // Head rank beats the per-rank average of the deep tail.
        let tail_per_rank = tail as f64 / (n as f64 / 4.0).max(1.0);
        prop_assert!(head as f64 + 1.0 >= tail_per_rank);
    }

    /// The latency-percentile estimator returns exactly the nearest-rank
    /// order statistic: on a shuffled uniform grid `0, 1, .., n-1` the
    /// p-th percentile is `round(p/100 * (n-1))` — in particular p50,
    /// p99, and p999 land on their analytically known ranks.
    #[test]
    fn percentile_matches_uniform_grid_rank(
        n in 2usize..4_000,
        seed in 0u64..50,
        p in 0.0f64..100.0,
    ) {
        let mut xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        // Shuffle with the workspace RNG: percentile must not depend on
        // input order.
        let mut rng = emb_util::seed_rng(seed);
        for i in (1..xs.len()).rev() {
            let j = rng.gen_range(0..(i as u64 + 1)) as usize;
            xs.swap(i, j);
        }
        for q in [50.0, 99.0, 99.9, p] {
            let expect = (q / 100.0 * (n - 1) as f64).round();
            prop_assert_eq!(emb_util::stats::percentile(&xs, q), Some(expect));
        }
    }

    /// On exponential samples built from the inverse CDF at grid
    /// quantiles, the estimated p50/p99/p999 converge to the analytic
    /// quantiles `-ln(1 - p/100) / lambda` of the distribution.
    #[test]
    fn percentile_matches_exponential_quantiles(lambda in 0.5f64..50.0) {
        let n = 20_000usize;
        let xs: Vec<f64> = (0..n)
            .map(|i| {
                let u = (i as f64 + 0.5) / n as f64;
                -(1.0 - u).ln() / lambda
            })
            .collect();
        for q in [50.0f64, 99.0, 99.9] {
            let analytic = -(1.0 - q / 100.0).ln() / lambda;
            let est = emb_util::stats::percentile(&xs, q).unwrap();
            prop_assert!(
                (est - analytic).abs() / analytic < 0.02,
                "p{q}: estimate {est} vs analytic {analytic}"
            );
        }
    }

    /// Percentiles are always an element of the input and monotone
    /// non-decreasing in `p`, bracketed by the min and max.
    #[test]
    fn percentile_is_an_element_and_monotone(
        xs in prop::collection::vec(-1e6f64..1e6, 1..300),
        p_lo in 0.0f64..100.0,
        p_hi in 0.0f64..100.0,
    ) {
        let (lo, hi) = if p_lo <= p_hi { (p_lo, p_hi) } else { (p_hi, p_lo) };
        let a = emb_util::stats::percentile(&xs, lo).unwrap();
        let b = emb_util::stats::percentile(&xs, hi).unwrap();
        prop_assert!(xs.contains(&a) && xs.contains(&b));
        prop_assert!(a <= b);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(emb_util::stats::percentile(&xs, 0.0), Some(min));
        prop_assert_eq!(emb_util::stats::percentile(&xs, 100.0), Some(max));
    }

    /// Dedup adjustment preserves hotness order and caps weights at 1.
    #[test]
    fn dedup_adjust_preserves_order(h in hotness_strategy(200), uniq in 1.0f64..150.0) {
        let adj = h.dedup_adjusted(uniq);
        prop_assert_eq!(adj.len(), h.len());
        for (i, &w) in adj.weights.iter().enumerate() {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&w));
            for (j, &w2) in adj.weights.iter().enumerate().skip(i + 1) {
                if h.weights[i] > h.weights[j] {
                    prop_assert!(w >= w2 - 1e-12);
                }
            }
        }
    }
}
