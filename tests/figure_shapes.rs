//! Shape tests for the figure harness: every regenerated table/figure
//! must exhibit the qualitative result the paper reports — who wins, by
//! roughly what factor, where crossovers fall.
//!
//! These consume the figure modules' pure `compute` API (structured
//! result types), never rendered stdout.

use ugache_bench::figures::*;
use ugache_bench::Scenario;

fn tiny() -> Scenario {
    Scenario {
        gnn_scale: 16_384,
        dlr_scale: 65_536,
        gnn_batch: 128,
        dlr_batch: 128,
        iters: 1,
        serve_users: 50_000,
        serve_requests: 48,
    }
}

#[test]
fn table1_embedding_layer_dominates_without_cache() {
    let b = table1::compute(&tiny());
    // Paper Table 1: EMT >> MLP without a cache; the cache removes most
    // of the EMT time.
    assert!(
        b.emt_ms > b.mlp_ms,
        "EMT {} should exceed MLP {}",
        b.emt_ms,
        b.mlp_ms
    );
    assert!(
        b.emt_cached_ms < b.emt_ms * 0.8,
        "cache should cut EMT substantially"
    );
    assert!(
        b.gmem_ratio > 0.3,
        "cached run must serve a chunk from GPU memory"
    );
}

#[test]
fn table3_has_all_six_datasets() {
    let rows = table3::compute(&tiny());
    assert_eq!(rows.len(), 6);
    let names: Vec<&str> = rows.iter().map(|r| r.name.as_str()).collect();
    for expect in ["PA", "CF", "MAG", "CR", "SYN-A", "SYN-B"] {
        assert!(names.contains(&expect), "{expect} missing");
    }
}

#[test]
fn fig2_shapes() {
    let pts = fig02::compute(&tiny());
    // Partition local hit rate pins near 1/G; global saturates early.
    let last = pts.last().unwrap();
    assert!(
        last.part_local < 0.25,
        "partition local stays low: {}",
        last.part_local
    );
    assert!(last.part_global > 0.9, "partition global saturates");
    // Replication local hit rate grows monotonically with capacity.
    let first = pts.first().unwrap();
    assert!(last.rep_local > first.rep_local + 0.2);
    // UGache never loses to either baseline by more than noise.
    for p in &pts {
        assert!(
            p.ugache_ms <= p.rep_ms.min(p.part_ms) * 1.15,
            "ratio {}: ugache {} vs rep {} part {}",
            p.ratio_pct,
            p.ugache_ms,
            p.rep_ms,
            p.part_ms
        );
    }
}

#[test]
fn fig4_mechanism_ordering() {
    let bars = fig04::compute(&tiny());
    // Tiny-scale batches are launch-overhead dominated (~15 µs), so the
    // ordering check gets overhead-sized slack; the paper-scale ordering
    // is exercised by `repro fig4` at the quick/full scenarios.
    for b in &bars {
        assert!(
            b.ugache_ms <= b.peer_ms * 1.3 + 0.02,
            "{} {}: factored {} vs peer {}",
            b.server,
            b.dataset,
            b.ugache_ms,
            b.peer_ms
        );
        assert!(
            b.ugache_ms <= b.message_ms * 1.3 + 0.02,
            "{} {}: factored {} vs message {}",
            b.server,
            b.dataset,
            b.ugache_ms,
            b.message_ms
        );
    }
}

#[test]
fn fig6_tolerances() {
    let series = fig06::compute(&tiny());
    let find = |label: &str, from: usize| {
        series[from..]
            .iter()
            .find(|s| s.label == label)
            .unwrap_or_else(|| panic!("{label} missing"))
    };
    // Server A (first 3 series): CPU saturates with few cores and then
    // degrades; local keeps growing to all cores.
    let cpu = find("CPU", 0);
    let peak = cpu
        .points
        .iter()
        .cloned()
        .fold((0, 0.0), |a, b| if b.1 > a.1 { b } else { a });
    assert!(peak.0 <= 8, "PCIe peaks at {} cores", peak.0);
    assert!(
        cpu.points.last().unwrap().1 < peak.1,
        "congestion degrades CPU bandwidth"
    );
    let local = find("Local", 0);
    assert!(local.points.last().unwrap().1 >= local.points[4].1);
    // Server C: contended remote is clearly below uncontended.
    let remote = find("Remote", 3);
    let contended = find("Remote (G3 collides)", 3);
    let r_last = remote.points.last().unwrap().1;
    let c_last = contended.points.last().unwrap().1;
    assert!(
        c_last < r_last * 0.8,
        "collision must cost bandwidth: {c_last} vs {r_last}"
    );
}

#[test]
fn fig8_dedication_covers_every_reachable_source() {
    let ds = fig08::compute(&tiny());
    for d in &ds {
        assert!(d.groups.iter().any(|(l, _, _)| l == "Host"));
        for (_, cores, _) in &d.groups {
            assert!(*cores >= 1);
        }
    }
    // Server B GPU0 reaches exactly 4 remotes (its clique + the mate).
    let b0 = ds
        .iter()
        .find(|d| d.server.contains("ServerB") && d.gpu == 0)
        .unwrap();
    assert_eq!(b0.groups.len(), 5, "4 remotes + host: {:?}", b0.groups);
}

#[test]
fn fig9_caps_hold() {
    let rows = fig09::compute(&tiny()).rows;
    assert!(!rows.is_empty());
    let total: usize = rows.iter().map(|r| r.entries).sum();
    // Blocks partition all entries (16384-scaled PA ≈ 6.7K vertices).
    assert!(total > 1_000);
    for r in &rows {
        assert!(r.max_block <= (0.005 * total as f64).ceil() as usize + 1);
        if r.entries >= 8 {
            assert!(r.blocks >= 8, "level {} has {} blocks", r.level, r.blocks);
        }
    }
}

#[test]
fn fig16_gap_is_small() {
    let gaps = fig16::compute(&tiny());
    assert!(!gaps.is_empty());
    let mean: f64 = gaps.iter().map(|g| g.rel_gap()).sum::<f64>() / gaps.len() as f64;
    // Paper: <2% average.
    assert!(mean < 0.05, "mean gap {:.3}", mean);
}

#[test]
fn fig17_refresh_bounded_impact_and_recovery() {
    let samples = fig17::compute(&tiny()).samples;
    assert!(samples.len() > 20);
    let active: Vec<&_> = samples.iter().filter(|s| s.refresh_active).collect();
    assert!(!active.is_empty(), "a refresh must appear on the timeline");
    // Impact while active stays bounded (~10% over the drifted baseline).
    let drifted_idle: f64 = samples
        .iter()
        .filter(|s| !s.refresh_active && s.t > 36.0 && s.t < 150.0)
        .map(|s| s.inference_ms)
        .fold(f64::INFINITY, f64::min);
    let worst_active = active.iter().map(|s| s.inference_ms).fold(0.0f64, f64::max);
    assert!(
        worst_active <= drifted_idle * 1.35,
        "refresh impact too large: {worst_active} vs idle {drifted_idle}"
    );
    // After the second refresh the drifted workload is served faster than
    // right before it.
    let before_2nd = samples
        .iter()
        .filter(|s| s.t > 130.0 && s.t < 150.0)
        .map(|s| s.inference_ms)
        .sum::<f64>()
        / samples
            .iter()
            .filter(|s| s.t > 130.0 && s.t < 150.0)
            .count()
            .max(1) as f64;
    let tail = samples
        .iter()
        .filter(|s| s.t > 185.0)
        .map(|s| s.inference_ms)
        .sum::<f64>()
        / samples.iter().filter(|s| s.t > 185.0).count().max(1) as f64;
    assert!(
        tail <= before_2nd * 1.02,
        "no recovery: {tail} vs {before_2nd}"
    );
}

#[test]
fn fig13_fem_never_hurts_utilization() {
    let utils = fig13::compute(&tiny());
    for u in &utils {
        assert!(
            u.pcie_fem >= u.pcie_naive * 0.95,
            "{}: PCIe regressed",
            u.workload
        );
        assert!(
            u.nvlink_fem >= u.nvlink_naive * 0.95,
            "{}: NVLink regressed",
            u.workload
        );
    }
}

#[test]
fn fig14_split_shapes() {
    let splits = fig14::compute(&tiny());
    // RepU never reads remote; PartU local share stays ≈ 1/G.
    for s in &splits {
        match s.system.as_str() {
            "RepU" => assert!(s.remote < 1e-9),
            "PartU" => assert!(s.local < 0.3),
            _ => {}
        }
    }
    // UGache on PA grows local share with capacity; on CF it stays
    // partition-like (the paper's Figure 14 contrast).
    let ug = |data: &str, lo: f64| {
        splits
            .iter()
            .filter(|s| s.system == "UGache" && s.dataset == data && s.ratio_pct >= lo)
            .map(|s| s.local)
            .fold(0.0f64, f64::max)
    };
    let pa_hi = ug("PA", 10.0);
    let pa_lo = splits
        .iter()
        .find(|s| s.system == "UGache" && s.dataset == "PA" && s.ratio_pct <= 2.0)
        .unwrap()
        .local;
    assert!(
        pa_hi > pa_lo,
        "UGache/PA local share must grow: {pa_lo} -> {pa_hi}"
    );
}

#[test]
fn serve_latency_curves_have_serving_shape() {
    let d = serve::compute(&tiny());
    assert!(d.capacity_rps > 0.0, "capacity probe must be positive");
    assert_eq!(d.points.len(), serve::LOAD_FACTORS.len());
    for p in &d.points {
        let s = &p.sample;
        assert_eq!(s.requests as usize, tiny().serve_requests);
        // Percentiles are ordered at every operating point.
        assert!(s.p50_ms > 0.0);
        assert!(s.p50_ms <= s.p99_ms && s.p99_ms <= s.p999_ms && s.p999_ms <= s.max_ms);
        // Extraction tier fractions partition the extracted keys.
        let fracs = s.local_frac + s.remote_frac + s.host_frac;
        assert!((fracs - 1.0).abs() < 1e-9, "tier fractions sum to {fracs}");
        assert!(s.mean_batch >= 1.0);
    }
    let light = &d.points.first().unwrap().sample;
    let heavy = &d.points.last().unwrap().sample;
    // Below saturation the server keeps up with offered load; past the
    // capacity knee it cannot (achieved < offered) and the queue grows.
    assert!(
        light.achieved_rps > light.offered_rps * 0.5,
        "light load underserved: achieved {} of offered {}",
        light.achieved_rps,
        light.offered_rps
    );
    assert!(
        heavy.achieved_rps < heavy.offered_rps,
        "overload must saturate: achieved {} vs offered {}",
        heavy.achieved_rps,
        heavy.offered_rps
    );
    assert!(
        heavy.mean_queue_ms > light.mean_queue_ms,
        "queueing delay must grow with load: {} -> {}",
        light.mean_queue_ms,
        heavy.mean_queue_ms
    );
    // Batching coalesces harder under pressure.
    assert!(heavy.mean_batch >= light.mean_batch);
}
