//! Differential record/replay tests: a UGTR trace, round-tripped
//! through its byte encoding, must drive an identically built system to
//! the same extraction outcomes, cache hit counters, and telemetry
//! report as the live generator — at any worker-pool width. See
//! EXPERIMENTS.md ("Access-trace format") and DESIGN.md ("Why replay is
//! bitwise") for the contract these tests pin.

use emb_scenario::{registry, Scenario, ScenarioDef};
use emb_serve::{run_load_point, run_load_point_with_keys, ClientPopulation};
use emb_telemetry::Report;
use emb_util::zipf::powerlaw_hotness;
use emb_workload::{Trace, TraceError, TRACE_VERSION};
use extractor::ExtractOutcome;
use ugache::baselines::{build_system, SystemInstance, SystemKind};
use ugache::{UGache, UGacheConfig};
use ugache_bench::figures::serve::serve_config;
use ugache_bench::replay::record_trace;

/// Small knobs so the differential runs stay fast in release CI.
fn tiny_knobs() -> Scenario {
    Scenario {
        gnn_scale: 16_384,
        dlr_scale: 65_536,
        gnn_batch: 64,
        dlr_batch: 64,
        iters: 2,
        serve_users: 10_000,
        serve_requests: 8,
    }
}

/// Unique-key (local, remote, host) hit counters for one batch, read
/// off the placement's access table like the replay driver does.
fn tier_counts(sys: &SystemInstance, shards: &[Vec<u32>]) -> (u64, u64, u64) {
    let host_idx = shards.len() as u8;
    let (mut local, mut remote, mut host) = (0u64, 0u64, 0u64);
    for (dst, keys) in shards.iter().enumerate() {
        for &k in keys {
            let src = sys.placement.access[dst][k as usize];
            if src == dst as u8 {
                local += 1;
            } else if src == host_idx {
                host += 1;
            } else {
                remote += 1;
            }
        }
    }
    (local, remote, host)
}

/// Everything one training-style run (live or replayed) produces.
#[derive(Debug, PartialEq)]
struct RunResult {
    outcomes: Vec<ExtractOutcome>,
    counters: Vec<(u64, u64, u64)>,
    report: Report,
}

/// Builds the scenario's reference system exactly once per side, so the
/// live and replay runs compare systems constructed from identical
/// inputs.
fn training_system(def: &ScenarioDef, knobs: &Scenario) -> SystemInstance {
    let plat = def.resolve_platform();
    let (hotness, entry_bytes, accesses, n) = match def.workload {
        emb_scenario::WorkloadSpec::Gnn { .. } => {
            let (mut w, h) = def.gnn(knobs);
            let a = w.measure_accesses_per_iter(1);
            (h, w.dataset().entry_bytes, a, w.dataset().num_entries())
        }
        emb_scenario::WorkloadSpec::Dlr { .. } => {
            let (mut w, h) = def.dlr(knobs);
            let a = w.measure_accesses_per_iter(1);
            (h, w.dataset().entry_bytes, a, w.dataset().num_entries())
        }
        emb_scenario::WorkloadSpec::ServeZipf => unreachable!("training scenarios only"),
    };
    build_system(
        SystemKind::UGache,
        &plat,
        &hotness,
        (n / 20).max(64),
        entry_bytes,
        accesses,
        def.seed,
    )
    .expect("reference system builds")
}

/// Runs the batches through a fresh reference system under a telemetry
/// scope; the batch source is the only difference between the live and
/// replayed runs.
fn drive(def: &ScenarioDef, knobs: &Scenario, batches: &[Vec<Vec<u32>>]) -> RunResult {
    let sys = training_system(def, knobs);
    let ((outcomes, counters), report) = emb_telemetry::collect(|| {
        let mut outcomes = Vec::new();
        let mut counters = Vec::new();
        for shards in batches {
            outcomes.push(sys.extract(shards));
            counters.push(tier_counts(&sys, shards));
        }
        (outcomes, counters)
    });
    RunResult {
        outcomes,
        counters,
        report,
    }
}

/// Live-vs-replay differential for one training scenario: the live
/// stream comes straight from the generator, the replayed one from a
/// trace round-tripped through its byte encoding.
fn assert_training_replay_matches_live(name: &str, knobs: &Scenario) -> Vec<u8> {
    let def = registry().get(name).expect("scenario is registered");
    // Live batches, drawn from a fresh generator.
    let live_batches: Vec<Vec<Vec<u32>>> = match def.workload {
        emb_scenario::WorkloadSpec::Gnn { .. } => {
            let (mut w, _) = def.gnn(knobs);
            (0..knobs.iters).map(|_| w.next_batch()).collect()
        }
        emb_scenario::WorkloadSpec::Dlr { .. } => {
            let (mut w, _) = def.dlr(knobs);
            (0..knobs.iters).map(|_| w.next_batch()).collect()
        }
        emb_scenario::WorkloadSpec::ServeZipf => unreachable!(),
    };
    // Recorded batches, round-tripped bitwise through the wire format.
    let trace = record_trace(def, knobs, None);
    let bytes = trace.to_bytes();
    let decoded = Trace::from_bytes(&bytes).expect("trace decodes");
    assert_eq!(
        decoded.to_bytes(),
        bytes,
        "{name}: encode is bitwise stable"
    );
    assert_eq!(
        decoded.records, live_batches,
        "{name}: the trace is the live stream"
    );

    let live = drive(def, knobs, &live_batches);
    let replayed = drive(def, knobs, &decoded.records);
    assert_eq!(live, replayed, "{name}: replay diverged from live");
    assert!(
        live.counters.iter().any(|&(l, r, h)| l + r + h > 0),
        "{name}: the run touched keys"
    );
    bytes
}

/// Serve-side differential: `run_load_point` (live draws) vs
/// `run_load_point_with_keys` fed a decoded trace.
fn assert_serve_replay_matches_live(knobs: &Scenario) -> Vec<u8> {
    let def = registry().serve_def().expect("registered");
    let cfg = serve_config(knobs);
    let n = cfg.num_keys as usize;
    let build_engine = || {
        let plat = def.resolve_platform();
        let hotness = cache_policy::Hotness::new(powerlaw_hotness(n, cfg.user_alpha));
        let mut ucfg = UGacheConfig::new(cfg.entry_bytes, 256.0);
        ucfg.solver.blocks.max_blocks = 32;
        ucfg.sample_stride = 4;
        let host = emb_cache::HostTable::procedural(n, cfg.entry_bytes / 4);
        let cap = (n / 8).max(64);
        UGache::build(
            plat.clone(),
            host,
            &hotness,
            vec![cap; plat.num_gpus()],
            ucfg,
        )
        .expect("ugache builds")
    };
    let offered_rps = 50_000.0;

    let (live_sample, live_report) = emb_telemetry::collect(|| {
        let mut u = build_engine();
        let mut clients = ClientPopulation::new(
            cfg.seed,
            cfg.num_users,
            cfg.num_keys,
            cfg.user_alpha,
            cfg.keys_per_request,
        );
        run_load_point(&mut u, &cfg, &mut clients, 0, offered_rps)
    });

    let trace = record_trace(def, knobs, None);
    let bytes = trace.to_bytes();
    let decoded = Trace::from_bytes(&bytes).expect("trace decodes");
    assert_eq!(decoded.num_gpus, 1, "serve traces are one stream");
    assert_eq!(decoded.records.len(), knobs.serve_requests);
    let request_keys: Vec<Vec<u32>> = decoded.records.iter().map(|r| r[0].clone()).collect();

    let (replay_sample, replay_report) = emb_telemetry::collect(|| {
        let mut u = build_engine();
        run_load_point_with_keys(&mut u, &cfg, 0, offered_rps, &request_keys)
    });

    assert_eq!(
        live_sample, replay_sample,
        "serve replay diverged from live"
    );
    assert_eq!(live_report, replay_report, "serve telemetry diverged");
    assert!(live_sample.requests > 0);
    bytes
}

#[test]
fn replay_matches_live_for_dlr_gnn_and_serve_at_widths_1_and_4() {
    let knobs = tiny_knobs();
    // Width is process-global, so the whole sweep lives in one test; the
    // trace bytes and every differential must be identical at both
    // widths (the same guarantee `--threads` gives artifacts).
    let mut per_width: Vec<[Vec<u8>; 3]> = Vec::new();
    for width in [1usize, 4] {
        emb_util::pool::set_threads(width);
        per_width.push([
            assert_training_replay_matches_live("dlr/cr@server_a", &knobs),
            assert_training_replay_matches_live("gnn/pa/sage_sup@server_a", &knobs),
            assert_serve_replay_matches_live(&knobs),
        ]);
    }
    emb_util::pool::set_threads(1);
    assert_eq!(
        per_width[0], per_width[1],
        "trace bytes changed with the pool width"
    );
}

#[test]
fn version_mismatch_and_corruption_are_hard_errors() {
    let def = registry().get("dlr/syn_a@server_a").expect("registered");
    let mut bytes = record_trace(def, &tiny_knobs(), Some(1)).to_bytes();

    // Future version: bytes 4..8 hold the little-endian version field.
    let future = (TRACE_VERSION + 1).to_le_bytes();
    bytes[4..8].copy_from_slice(&future);
    match Trace::from_bytes(&bytes) {
        Err(TraceError::VersionMismatch { found }) => {
            assert_eq!(found, TRACE_VERSION + 1);
        }
        other => panic!("expected VersionMismatch, got {other:?}"),
    }
    bytes[4..8].copy_from_slice(&TRACE_VERSION.to_le_bytes());
    assert!(Trace::from_bytes(&bytes).is_ok(), "restored trace decodes");

    bytes[0] = b'X';
    assert!(
        matches!(Trace::from_bytes(&bytes), Err(TraceError::BadMagic { .. })),
        "corrupt magic must be rejected"
    );
    bytes[0] = b'U';
    let cut = bytes.len() - 3;
    assert!(
        matches!(
            Trace::from_bytes(&bytes[..cut]),
            Err(TraceError::Truncated { .. })
        ),
        "truncated traces must be rejected"
    );
}
