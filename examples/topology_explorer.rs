//! Topology explorer: inspect the three paper testbeds — connectivity,
//! bandwidth hierarchy, profiled `T`/`R` matrices and the Figure-6-style
//! bandwidth-vs-cores curves the whole system is calibrated against.
//!
//! Run with: `cargo run --release --example topology_explorer`

use gpu_memsim::{microbench, CongestionModel};
use gpu_platform::{DedicationConfig, Location, Platform, Profile};

fn main() {
    for platform in [
        Platform::server_a(),
        Platform::server_b(),
        Platform::server_c(),
    ] {
        println!("\n================ {} ================", platform.name);
        let g = platform.num_gpus();
        println!(
            "{} × {} | host mem {} GiB",
            g,
            platform.gpus[0].name,
            platform.host_mem_bytes >> 30
        );

        // Connectivity matrix.
        println!("\nconnectivity (bandwidth GB/s, '-' = unconnected):");
        print!("      ");
        for j in 0..g {
            print!("{:>7}", format!("G{j}"));
        }
        println!("{:>7}", "Host");
        for i in 0..g {
            print!("G{i:<5}");
            for j in 0..g {
                if i == j {
                    print!("{:>7}", "local");
                } else if platform.connected(i, Location::Gpu(j)) {
                    print!("{:>7.0}", platform.path(i, Location::Gpu(j)).bw / 1e9);
                } else {
                    print!("{:>7}", "-");
                }
            }
            println!("{:>7.0}", platform.path(i, Location::Host).bw / 1e9);
        }

        // Cliques (what Quiver-style partitioning would use).
        println!(
            "\nfully-connected cliques: {:?}",
            platform.fully_connected_groups()
        );

        // Profiled effective bandwidths (the solver's T matrix, inverted).
        let prof = Profile::new(&platform, DedicationConfig::default());
        println!("\nprofiled effective GB/s for GPU0 (concurrent extraction):");
        for j in platform.locations() {
            let t = prof.t(0, j);
            if t.is_finite() {
                println!(
                    "  ← {:<5} {:>8.1} GB/s (dedicated cores: {})",
                    j.to_string(),
                    1.0 / t / 1e9,
                    prof.cores[0][prof.loc_index(j)]
                );
            } else {
                println!("  ← {:<5} unreachable", j.to_string());
            }
        }

        // A slice of Figure 6.
        let model = CongestionModel::default();
        println!("\nbandwidth vs cores, GPU0 ← host (Figure 6 series):");
        for cores in [1, 2, 4, 8, 16, 32, platform.gpus[0].sm_count] {
            let bw =
                microbench::bandwidth_with_cores(&platform, 0, Location::Host, cores, &[], model);
            println!("  {cores:>4} cores: {:>6.1} GB/s", bw / 1e9);
        }
    }
}
