//! Quickstart: build a UGache over a simulated 4×V100 machine, gather
//! real embedding vectors through the framework adapters, and time one
//! data-parallel extraction.
//!
//! Run with: `cargo run --release --example quickstart`

use cache_policy::Hotness;
use emb_cache::HostTable;
use emb_util::zipf::powerlaw_hotness;
use gpu_platform::Platform;
use ugache::framework::TorchStyleLayer;
use ugache::{UGache, UGacheConfig};

fn main() {
    // An embedding table: 100K entries × 32 floats, procedurally valued
    // (same bytes a real table would hold, O(1) memory).
    let num_entries = 100_000;
    let dim = 32;
    let host = HostTable::procedural(num_entries, dim);

    // Skewed access frequencies, as EmbDL workloads exhibit (paper §2).
    let hotness = Hotness::new(powerlaw_hotness(num_entries, 1.2));

    // The platform: Server A from the paper (4×V100, hard-wired NVLink).
    let platform = Platform::server_a();
    let num_gpus = platform.num_gpus();

    // Each GPU can cache 5% of the table.
    let cap = num_entries / 20;

    // Build: profiles the platform, solves the placement MILP/LP, fills
    // the per-GPU arenas, stands up the factored extractor.
    let cfg = UGacheConfig::new(dim * 4, 20_000.0);
    let mut ugache =
        UGache::build(platform, host, &hotness, vec![cap; num_gpus], cfg).expect("build");

    println!(
        "predicted extraction / iteration: {:.3} ms",
        ugache.predicted_extraction_secs() * 1e3
    );
    let placement = ugache.placement();
    println!(
        "placement: {} entries cached per GPU, local hit rate {:.1}%, global {:.1}%",
        placement.cached_count(0),
        placement.local_hit_rate(&hotness) * 100.0,
        placement.global_hit_rate(&hotness) * 100.0,
    );

    // Functional path: a PyTorch-style embedding layer on GPU 0.
    let mut layer = TorchStyleLayer::new(&mut ugache, 0, dim);
    let keys = [0u32, 42, 99_999];
    let t = layer.forward(&keys);
    println!(
        "forward({keys:?}) -> {}x{} tensor; first row starts with {:.4}",
        t.rows,
        t.cols,
        t.row(0)[0]
    );
    println!(
        "lookup split: {} local / {} remote / {} host",
        layer.last_stats.local, layer.last_stats.remote, layer.last_stats.host
    );

    // Timed path: one data-parallel iteration of 20K Zipf-drawn keys/GPU.
    let zipf = emb_util::ZipfSampler::new(num_entries as u64, 1.2);
    let mut rng = emb_util::seed_rng(7);
    let batches: Vec<Vec<u32>> = (0..num_gpus)
        .map(|_| {
            let mut v: Vec<u32> = (0..20_000).map(|_| zipf.sample(&mut rng) as u32).collect();
            v.sort_unstable();
            v.dedup();
            v
        })
        .collect();
    let report = ugache.process_iteration(&batches);
    println!(
        "simulated extraction of {} unique keys/GPU: {} (on-model hardware)",
        batches[0].len(),
        report.extract.makespan
    );
}
