//! GNN training end-to-end: compare UGache against GNNLab-style
//! replication and WholeGraph-style partition caches on all three paper
//! testbeds, supervised GraphSAGE over the scaled Papers100M preset.
//!
//! Run with: `cargo run --release --example gnn_training`

use emb_workload::{gnn_preset, GnnDatasetId, GnnModel, GnnWorkload};
use gpu_platform::Platform;
use ugache::apps::gnn::run_gnn_epoch;
use ugache::apps::GnnAppConfig;
use ugache::SystemKind;

fn main() {
    let scale = 4096;
    let cfg = GnnAppConfig {
        batch_size: 512,
        measure_iters: 2,
        ..Default::default()
    };

    for platform in [
        Platform::server_a(),
        Platform::server_b(),
        Platform::server_c(),
    ] {
        println!("\n--- {} ---", platform.name);
        let dataset = gnn_preset(GnnDatasetId::Pa, scale, 1);
        let mut workload = GnnWorkload::new(
            dataset,
            GnnModel::GraphSageSupervised,
            cfg.batch_size,
            platform.num_gpus(),
            1,
        );
        // Pre-sampling hotness, GNNLab-style (paper §6.1).
        let hotness = workload.profile_hotness(2);

        for kind in [
            SystemKind::GnnLab,
            SystemKind::WholeGraph,
            SystemKind::PartU,
            SystemKind::UGache,
        ] {
            let mut w = workload.clone();
            match run_gnn_epoch(kind, &platform, &mut w, &hotness, &cfg) {
                Ok(r) => println!(
                    "{:<11} epoch {:>8.3}s  (extract {:>7.3}s, sample {:>7.3}s, train {:>7.3}s, other {:>6.3}s; {} iters)",
                    r.system, r.epoch_secs, r.extract_secs, r.sample_secs, r.train_secs, r.other_secs, r.iters
                ),
                Err(e) => println!("{:<11} cannot launch: {e}", kind.name()),
            }
        }
    }
}
