//! Extraction schedule visualization: run one factored extraction and one
//! naive-peer extraction through the traced simulator and render the
//! per-source core occupancy over time — the live version of the paper's
//! Figure 8 schedule sketch.
//!
//! Run with: `cargo run --release --example extraction_trace`

use cache_policy::{baselines, Hotness};
use emb_util::zipf::powerlaw_hotness;
use emb_util::{seed_rng, SimTime, ZipfSampler};
use gpu_memsim::{simulate_traced, DispatchMode, GpuWork, SimConfig, SourceDemand};
use gpu_platform::{DedicationConfig, Location, Platform};

fn main() {
    let plat = Platform::server_a();
    let n = 50_000usize;
    let hotness = Hotness::new(powerlaw_hotness(n, 1.2));
    let placement = baselines::partition(&plat, &hotness, 2_500).expect("Server A is uniform");

    // One iteration's key batches → per-source byte demands.
    let zipf = ZipfSampler::new(n as u64, 1.2);
    let mut rng = seed_rng(5);
    let works: Vec<GpuWork> = (0..plat.num_gpus())
        .map(|gpu| {
            let mut keys: Vec<u32> = (0..25_000).map(|_| zipf.sample(&mut rng) as u32).collect();
            keys.sort_unstable();
            keys.dedup();
            let demands: Vec<SourceDemand> = placement
                .split_keys(gpu, &keys)
                .into_iter()
                .map(|(src, count)| SourceDemand {
                    src,
                    bytes: count as f64 * 512.0,
                })
                .collect();
            GpuWork { gpu, demands }
        })
        .collect();

    let cfg = SimConfig {
        launch_overhead: SimTime::ZERO,
        ..SimConfig::default()
    };
    let sources: Vec<Location> = (0..plat.num_gpus())
        .map(Location::Gpu)
        .chain([Location::Host])
        .collect();

    for (label, mode) in [
        (
            "factored extraction (UGache §5.3)",
            DispatchMode::Factored {
                dedication: DedicationConfig::default(),
            },
        ),
        (
            "naive peer (random static dispatch)",
            DispatchMode::RandomShared { seed: 5 },
        ),
    ] {
        let (result, trace) = simulate_traced(&plat, &cfg, &works, mode);
        println!("\n=== {label} ===");
        println!(
            "makespan {} | GPU0 core utilization {:.1}%",
            result.makespan,
            trace.core_utilization(0, plat.gpus[0].sm_count) * 100.0
        );
        println!(
            "GPU0 core occupancy by source over time (rows: sources; density = active cores):"
        );
        print!(
            "{}",
            trace.render_occupancy(0, &sources, 72, plat.gpus[0].sm_count)
        );
        println!("core-seconds per source on GPU0:");
        for (src, busy) in trace.busy_per_source(0) {
            println!("  {:>5}: {:.3} ms·core", src.to_string(), busy * 1e3);
        }
    }
}
