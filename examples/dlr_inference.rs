//! DLR inference with a live cache refresh: serve a Criteo-like workload,
//! drift its hot set (a new daily trace), watch the estimated extraction
//! time degrade, refresh in the background, and recover — the paper's §7.2
//! lifecycle on a simulated 8×A100 machine.
//!
//! Run with: `cargo run --release --example dlr_inference`

use emb_cache::HostTable;
use emb_dense::{DlrmModel, Matrix};
use emb_util::split_seed;
use emb_workload::dlr::DlrHotness;
use emb_workload::{dlr_preset, DlrDatasetId, DlrWorkload};
use gpu_platform::Platform;
use ugache::{UGache, UGacheConfig};

/// Rotates keys half-way around their table (drifts the hot set).
fn drift(dataset: &emb_workload::DlrDataset, keys: &mut [Vec<u32>]) {
    for ks in keys.iter_mut() {
        for k in ks.iter_mut() {
            let t = match dataset.table_offsets.binary_search(&(*k as u64)) {
                Ok(t) => t,
                Err(i) => i - 1,
            };
            let (off, size) = (dataset.table_offsets[t], dataset.table_sizes[t]);
            *k = (off + ((*k as u64 - off) + size / 2) % size) as u32;
        }
        ks.sort_unstable();
        ks.dedup();
    }
}

fn main() {
    let platform = Platform::server_c();
    let dataset = dlr_preset(DlrDatasetId::SynA, 8192);
    let mut workload = DlrWorkload::new(dataset.clone(), 512, platform.num_gpus(), 11);
    let hotness = workload.hotness(DlrHotness::Analytic);

    let cap = ugache::apps::dlr::dlr_cache_capacity(&platform, &dataset);
    let accesses = workload.clone().measure_accesses_per_iter(2);
    let mut cfg = UGacheConfig::new(dataset.entry_bytes, accesses);
    cfg.sample_stride = 2;
    cfg.refresh.solve_secs = 5.0;
    let host = HostTable::procedural(dataset.num_entries(), dataset.dim);
    let mut u = UGache::build(platform, host, &hotness, vec![cap; 8], cfg).expect("build");

    let mean = |u: &mut UGache, w: &mut DlrWorkload, drifted: bool, iters: usize| -> f64 {
        let mut acc = 0.0;
        for _ in 0..iters {
            let mut keys = w.next_batch();
            if drifted {
                drift(&dataset, &mut keys);
            }
            acc += u.process_iteration(&keys).extract.makespan.as_secs_f64();
        }
        acc / iters as f64 * 1e3
    };

    println!(
        "phase 1 — steady state:        {:.3} ms/iter",
        mean(&mut u, &mut workload, false, 4)
    );
    println!(
        "phase 2 — hot set drifts:      {:.3} ms/iter",
        mean(&mut u, &mut workload, true, 6)
    );

    let started = u.consider_refresh(false).expect("solver ok");
    println!("refresh triggered by drift?    {started}");
    if !started {
        u.consider_refresh(true).expect("solver ok");
    }
    // Serve through the refresh; the refresher migrates in small batches.
    let during = mean(&mut u, &mut workload, true, 4);
    println!("phase 3 — during refresh:      {during:.3} ms/iter (bounded impact)");
    let mut guard = 0;
    while u.refresh_active() {
        u.advance_clock(1.0);
        guard += 1;
        assert!(guard < 10_000);
    }
    println!(
        "phase 4 — after refresh:       {:.3} ms/iter",
        mean(&mut u, &mut workload, true, 4)
    );
    for (i, d) in u.refresh_history().iter().enumerate() {
        println!("refresh {} took {d:.2} s of virtual time", i + 1);
    }

    // Functional path: score a few requests through a real DLRM stack on
    // the embedding vectors the cache actually serves.
    let tables = 8usize; // a slice of the 100 tables keeps the demo snappy
    let model = DlrmModel::new(13, tables, dataset.dim, split_seed(7, 1));
    let reqs = 4usize;
    let mut keys = Vec::with_capacity(reqs * tables);
    let mut rng = emb_util::seed_rng(17);
    use rand::Rng;
    for _ in 0..reqs {
        for t in 0..tables {
            let off = dataset.table_offsets[t];
            let size = dataset.table_sizes[t];
            keys.push((off + rng.gen_range(0..size)) as u32);
        }
    }
    let mut emb = vec![0.0f32; keys.len() * dataset.dim];
    let _ = u.gather(0, &keys, &mut emb);
    let embeddings = Matrix::from_vec(reqs, tables * dataset.dim, emb);
    let dense = Matrix::xavier(reqs, 13, 23);
    let scores = model.forward(&dense, &embeddings);
    println!("DLRM CTR scores over cached embeddings: {scores:.3?}");
    assert!(scores.iter().all(|p| (0.0..=1.0).contains(p)));
}
