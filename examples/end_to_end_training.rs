//! Fully end-to-end GNN training: real graph sampling, real embedding
//! gathers through UGache, real mean-aggregation and a real MLP trained
//! with backprop — while every iteration's extraction is also timed on
//! the simulated 4×V100 platform. The embedding table stays frozen, as
//! the paper's pre-training setting prescribes (§2).
//!
//! Run with: `cargo run --release --example end_to_end_training`

use cache_policy::Hotness;
use emb_cache::HostTable;
use emb_dense::{mean_aggregate, Matrix, Mlp};
use emb_graph::{generate, GraphConfig};
use emb_util::seed_rng;
use gpu_platform::Platform;
use rand::seq::SliceRandom;
use rand::Rng;
use ugache::{UGache, UGacheConfig};

const DIM: usize = 16;
const FANOUT: usize = 10;
const BATCH: usize = 128;

fn main() {
    // Graph + frozen embeddings.
    let graph = generate(&GraphConfig {
        num_vertices: 30_000,
        avg_degree: 12,
        skew: 1.1,
        seed: 7,
    });
    let n = graph.num_vertices();
    let host = HostTable::dense(n, DIM);

    // Ground-truth labels the dense head must learn: the sign of a fixed
    // random projection of each vertex's *own* embedding — solvable from
    // the features, impossible without reading real embedding values.
    let mut proj_rng = seed_rng(13);
    let proj: Vec<f32> = (0..DIM).map(|_| proj_rng.gen_range(-1.0..1.0)).collect();
    let label = |v: u32| -> f32 {
        let e = host.read(v);
        let dot: f32 = e.iter().zip(&proj).map(|(a, b)| a * b).sum();
        if dot > 0.0 {
            1.0
        } else {
            0.0
        }
    };

    // UGache over degree-based hotness (PaGraph-style, §6.1).
    let hotness = Hotness::from_counts(&graph.in_degrees());
    let platform = Platform::server_a();
    let cfg = UGacheConfig::new(DIM * 4, (BATCH * (1 + FANOUT)) as f64);
    let mut ugache =
        UGache::build(platform, host.clone(), &hotness, vec![n / 20; 4], cfg).expect("build");

    let mut mlp = Mlp::new(&[DIM * 2, 32, 1], 3);
    let mut rng = seed_rng(21);
    let all: Vec<u32> = (0..n as u32).collect();

    println!(
        "{:>5} {:>10} {:>10} {:>14}",
        "iter", "loss", "acc", "extract(sim)"
    );
    for iter in 0..30 {
        // Sample a seed batch and 1-hop neighbourhoods.
        let seeds: Vec<u32> = all.choose_multiple(&mut rng, BATCH).copied().collect();
        let neighbors: Vec<Vec<u32>> = seeds
            .iter()
            .map(|&s| {
                let nbrs = graph.neighbors(s);
                nbrs.choose_multiple(&mut rng, FANOUT.min(nbrs.len()))
                    .copied()
                    .collect()
            })
            .collect();

        // The union of touched vertices is what the cache must serve; the
        // same batch is timed on the simulated platform (data parallel:
        // every GPU gets this batch shape).
        let mut touched: Vec<u32> = seeds.clone();
        touched.extend(neighbors.iter().flatten());
        touched.sort_unstable();
        touched.dedup();
        let timed = ugache
            .process_iteration(&vec![touched.clone(); 4])
            .extract
            .makespan;

        // Real gathers (GPU rank 0's view) into a local buffer.
        let mut buf = vec![0.0f32; touched.len() * DIM];
        let _stats = ugache.gather(0, &touched, &mut buf);
        let index = |v: u32| -> usize { touched.binary_search(&v).expect("gathered") };
        let feats = mean_aggregate(&seeds, &neighbors, DIM, |v| {
            let i = index(v);
            &buf[i * DIM..(i + 1) * DIM]
        });

        let targets: Vec<f32> = seeds.iter().map(|&s| label(s)).collect();
        let loss = mlp.train_bce(&feats, &targets, 0.3);

        if iter % 5 == 0 || iter == 29 {
            let logits = mlp.forward(&feats);
            let acc = (0..seeds.len())
                .filter(|&r| (logits.at(r, 0) > 0.0) == (targets[r] > 0.5))
                .count() as f64
                / seeds.len() as f64;
            println!(
                "{iter:>5} {loss:>10.4} {acc:>9.1}% {timed:>14}",
                acc = acc * 100.0
            );
        }
    }

    // Sanity: a fresh evaluation batch classified well above chance.
    let eval: Vec<u32> = all.choose_multiple(&mut rng, 512).copied().collect();
    let nbrs: Vec<Vec<u32>> = eval
        .iter()
        .map(|&s| graph.neighbors(s).iter().take(FANOUT).copied().collect())
        .collect();
    let mut touched: Vec<u32> = eval.clone();
    touched.extend(nbrs.iter().flatten());
    touched.sort_unstable();
    touched.dedup();
    let mut buf = vec![0.0f32; touched.len() * DIM];
    let _ = ugache.gather(0, &touched, &mut buf);
    let feats = mean_aggregate(&eval, &nbrs, DIM, |v| {
        let i = touched.binary_search(&v).unwrap();
        &buf[i * DIM..(i + 1) * DIM]
    });
    let logits = mlp.forward(&feats);
    let acc = (0..eval.len())
        .filter(|&r| (logits.at(r, 0) > 0.0) == (label(eval[r]) > 0.5))
        .count() as f64
        / eval.len() as f64;
    println!("held-out accuracy: {:.1}% (chance 50%)", acc * 100.0);
    assert!(acc > 0.8, "training failed to beat chance meaningfully");

    let _ = Matrix::zeros(1, 1);
}
